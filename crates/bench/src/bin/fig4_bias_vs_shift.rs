//! Regenerates **Figure 4**: biased learning vs decision-boundary shifting
//! on Industry3 — false alarms incurred to reach the same hotspot
//! detection accuracy.
//!
//! Protocol (paper §5, last experiment): train the CNN at ε = 0; fine-tune
//! with ε = 0.1, 0.2, 0.3; for each fine-tuned model's accuracy, shift the
//! *initial* model's decision boundary until it reaches the same accuracy
//! and compare false alarms.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin fig4_bias_vs_shift -- \
//!     --scale 0.02 --steps 800 --k 32
//! ```

use hotspot_bench::{build_benchmark, detector_config, oracle, table, ExperimentArgs};
use hotspot_core::metrics::EvalResult;
use hotspot_core::mgd::{self, MgdConfig};
use hotspot_core::shift;
use hotspot_datagen::suite::SuiteSpec;
use hotspot_nn::serialize::ParameterBlob;
use hotspot_nn::Tensor;

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.02);
    let out_dir = args.string("out", "results");
    let config = detector_config(&args);
    let steps = args.usize("steps", 800);

    let sim = oracle();
    let data = build_benchmark(&SuiteSpec::industry3(scale), &sim);
    eprintln!("[fig4] extracting feature tensors...");
    let (train_x, train_y) = config
        .pipeline
        .extract_dataset(&data.train)
        .expect("suite clips match the pipeline");
    let (test_x, test_y) = config
        .pipeline
        .extract_dataset(&data.test)
        .expect("suite clips match the pipeline");

    let initial_cfg = MgdConfig {
        max_steps: steps,
        ..config.mgd.clone()
    };
    let fine_cfg = MgdConfig {
        max_steps: (steps / 4).max(1),
        lr: config.mgd.lr * 0.5,
        ..config.mgd.clone()
    };

    eprintln!("[fig4] training initial model (ε = 0)...");
    let mut net = hotspot_core::model::CnnConfig {
        input_grid: config.pipeline.grid_dim(),
        input_channels: config.pipeline.coefficients(),
        ..config.cnn
    }
    .build();
    mgd::train(&mut net, &train_x, &train_y, 0.0, &initial_cfg).expect("training runs");
    let initial = ParameterBlob::from_network(&mut net);
    let base = evaluate(&net, &test_x, &test_y);
    eprintln!(
        "[fig4] initial model: accuracy {}, FA {}",
        table::pct(base.accuracy),
        base.false_alarms
    );

    let headers = [
        "epsilon",
        "bias_accu",
        "bias_FA",
        "shift_lambda",
        "shift_accu",
        "shift_FA",
        "FA_saved",
    ];
    let mut rows = Vec::new();
    rows.push(vec![
        "0.0".into(),
        table::pct(base.accuracy),
        base.false_alarms.to_string(),
        "0.000".into(),
        table::pct(base.accuracy),
        base.false_alarms.to_string(),
        "0".into(),
    ]);

    // Cumulative fine-tuning, as Algorithm 2 prescribes.
    for (i, eps) in [0.1f32, 0.2, 0.3].iter().enumerate() {
        eprintln!("[fig4] fine-tuning with ε = {eps}...");
        mgd::train(&mut net, &train_x, &train_y, *eps, &fine_cfg).expect("training runs");
        let biased = evaluate(&net, &test_x, &test_y);

        // Boundary-shift the *initial* model to the biased model's accuracy.
        let mut shifted_net = hotspot_core::model::CnnConfig {
            input_grid: config.pipeline.grid_dim(),
            input_channels: config.pipeline.coefficients(),
            ..config.cnn
        }
        .build();
        initial
            .load_into(&mut shifted_net)
            .expect("snapshot matches architecture");
        let (lambda, shift_acc, shift_fa) =
            shift::shift_for_accuracy(&shifted_net, &test_x, &test_y, biased.accuracy, 500);
        let saved = shift_fa as i64 - biased.false_alarms as i64;
        rows.push(vec![
            format!("{:.1}", eps),
            table::pct(biased.accuracy),
            biased.false_alarms.to_string(),
            format!("{lambda:.3}"),
            table::pct(shift_acc),
            shift_fa.to_string(),
            saved.to_string(),
        ]);
        let _ = i;
    }

    println!("\nFigure 4 reproduction (bias vs boundary shifting, Industry3):\n");
    println!("{}", table::render(&headers, &rows));
    println!(
        "Positive FA_saved = biased learning reaches the same accuracy with fewer false alarms\n\
         (each saved false alarm is 10 s of ODST)."
    );
    table::write_csv(&out_dir, "fig4_bias_vs_shift", &headers, &rows);
}

fn evaluate(net: &hotspot_nn::Network, features: &[Tensor], labels: &[bool]) -> EvalResult {
    // All cores; bit-identical to the serial predict_all.
    let preds = mgd::predict_all_with(net, features, hotspot_core::Parallelism::auto());
    EvalResult::from_predictions(&preds, labels, 0.0)
}
