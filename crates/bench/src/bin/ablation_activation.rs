//! Ablation: ReLU vs sigmoid/tanh activations in the paper's CNN.
//!
//! Section 4.1 replaces "the traditional sigmoid activation function" with
//! ReLU; this binary quantifies that choice by training the same
//! architecture with each nonlinearity on the ICCAD benchmark.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin ablation_activation -- \
//!     --scale 0.02 --steps 500
//! ```

use hotspot_bench::{build_benchmark, detector_config, oracle, table, ExperimentArgs};
use hotspot_core::metrics::EvalResult;
use hotspot_core::mgd::{self, MgdConfig};
use hotspot_datagen::suite::SuiteSpec;
use hotspot_nn::layers::{Conv2d, Dense, Dropout, Flatten, Layer, MaxPool2, Relu, Sigmoid, Tanh};
use hotspot_nn::Network;

#[derive(Clone, Copy)]
enum Activation {
    Relu,
    Sigmoid,
    Tanh,
}

impl Activation {
    fn name(&self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        }
    }

    fn layer(&self) -> Box<dyn Layer> {
        match self {
            Activation::Relu => Box::new(Relu::new()),
            Activation::Sigmoid => Box::new(Sigmoid::new()),
            Activation::Tanh => Box::new(Tanh::new()),
        }
    }
}

/// Builds the Table-1 architecture with a configurable nonlinearity.
fn build(k: usize, act: Activation, seed: u64) -> Network {
    let mut net = Network::new();
    let push_act = |net: &mut Network| match act {
        Activation::Relu => net.push(Relu::new()),
        Activation::Sigmoid => net.push(Sigmoid::new()),
        Activation::Tanh => net.push(Tanh::new()),
    };
    let _ = act.layer(); // object-safety demonstration; construction above is static
    net.push(Conv2d::new(k, 16, 3, 1, seed));
    push_act(&mut net);
    net.push(Conv2d::new(16, 16, 3, 1, seed + 1));
    push_act(&mut net);
    net.push(MaxPool2::new());
    net.push(Conv2d::new(16, 32, 3, 1, seed + 2));
    push_act(&mut net);
    net.push(Conv2d::new(32, 32, 3, 1, seed + 3));
    push_act(&mut net);
    net.push(MaxPool2::new());
    net.push(Flatten::new());
    net.push(Dense::new(32 * 9, 250, seed + 4));
    push_act(&mut net);
    net.push(Dropout::new(0.5, seed + 5));
    net.push(Dense::new(250, 2, seed + 6));
    net
}

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.02);
    let out_dir = args.string("out", "results");
    let config = detector_config(&args);
    let k = args.usize("k", 16);
    let steps = args.usize("steps", 500);

    let sim = oracle();
    let data = build_benchmark(&SuiteSpec::iccad(scale), &sim);
    eprintln!("[ablation_activation] extracting feature tensors (k = {k})...");
    let pipeline = hotspot_core::FeaturePipeline::new(10, 12, k).expect("valid pipeline");
    let (train_x, train_y) = pipeline.extract_dataset(&data.train).expect("extraction");
    let (test_x, test_y) = pipeline.extract_dataset(&data.test).expect("extraction");

    let mgd_cfg = MgdConfig {
        max_steps: steps,
        ..config.mgd.clone()
    };
    let headers = [
        "activation",
        "accu",
        "FA#",
        "overall",
        "best_val",
        "train_s",
    ];
    let mut rows = Vec::new();
    for act in [Activation::Relu, Activation::Sigmoid, Activation::Tanh] {
        eprintln!("[ablation_activation] training with {}...", act.name());
        let mut net = build(k, act, 2017);
        let report =
            mgd::train(&mut net, &train_x, &train_y, 0.0, &mgd_cfg).expect("training runs");
        let preds = mgd::predict_all(&net, &test_x);
        let result = EvalResult::from_predictions(&preds, &test_y, 0.0);
        rows.push(vec![
            act.name().to_string(),
            table::pct(result.accuracy),
            result.false_alarms.to_string(),
            table::pct(result.overall_accuracy()),
            table::pct(report.best_val_accuracy),
            format!("{:.1}", report.train_time_s),
        ]);
    }
    println!("\nAblation: activation function (ICCAD benchmark, ε = 0):\n");
    println!("{}", table::render(&headers, &rows));
    table::write_csv(&out_dir, "ablation_activation", &headers, &rows);
}
