//! Regenerates **Figure 1**: feature-tensor generation and the claim that
//! "an original clip can be recovered from an extracted feature tensor".
//!
//! Extracts the 12×12-block DCT tensor of a representative clip at
//! increasing coefficient counts `k` and reports the reconstruction RMSE
//! and compression ratio — the quantitative version of the figure's
//! division → DCT → encoding pipeline.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin fig1_reconstruction
//! ```

use hotspot_bench::{table, ExperimentArgs};
use hotspot_datagen::{patterns, PatternKind};
use hotspot_dct::{extract_feature_tensor, reconstruction_rmse, FeatureTensorSpec};
use hotspot_geometry::raster;
use rand::SeedableRng;

fn main() {
    let args = ExperimentArgs::from_env();
    let out_dir = args.string("out", "results");
    let seed = args.u64("seed", 7);

    // A representative clip: dense routing (rich spatial structure).
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let clip = patterns::sample_pattern(PatternKind::RandomRouting, &mut rng);
    let image = raster::rasterize_clip(&clip.normalized(), 10);
    let pixels = image.len();
    println!(
        "Clip: {} shapes, {:.1}% density, rasterised to {}x{} ({} px)",
        clip.shape_count(),
        100.0 * clip.density(),
        image.width(),
        image.height(),
        pixels
    );

    let headers = ["k", "tensor_size", "compression", "rmse"];
    let mut rows = Vec::new();
    let mut last_rmse = f64::INFINITY;
    for k in [1usize, 2, 4, 8, 16, 32, 64, 100] {
        let spec = FeatureTensorSpec::new(12, k).expect("valid spec");
        let tensor = extract_feature_tensor(&image, &spec).expect("image divides into 12x12");
        let rmse = reconstruction_rmse(&image, &spec).expect("extraction succeeds");
        assert!(
            rmse <= last_rmse + 1e-9,
            "rmse must not increase with k ({rmse} after {last_rmse})"
        );
        last_rmse = rmse;
        rows.push(vec![
            k.to_string(),
            tensor.as_slice().len().to_string(),
            format!("{:.1}x", pixels as f64 / tensor.as_slice().len() as f64),
            format!("{rmse:.4}"),
        ]);
    }
    println!("\nFigure 1 reproduction (k-truncated DCT reconstruction):\n");
    println!("{}", table::render(&headers, &rows));
    println!(
        "k = 100 keeps every coefficient of a 10x10-px block: RMSE ~ 0 shows the\n\
         transform is exactly invertible; small k trades accuracy for compression\n\
         while the low-frequency structure (what lithography responds to) survives."
    );
    table::write_csv(&out_dir, "fig1_reconstruction", &headers, &rows);
}
