//! Full-layout scan benchmark: windows scored per second by the streaming
//! scan engine versus the naive per-window pipeline (extract every clip,
//! rasterise and transform it from scratch, then batch-predict).
//!
//! Runs one block-aligned stride (the cached path — every layout block's
//! DCT is computed at most once) and one unaligned stride (the fallback
//! path) and reports cache hit rates alongside throughput. Each stride is
//! scanned twice more through the scoring knob: once with the default
//! batched block (one GEMM per layer per block of windows) and once with
//! `score_block = 1` (per-window scoring), recording windows/s and GEMM
//! calls per window for both so the report shows the batched path
//! streaming each dense weight matrix once per block. The scores of every
//! path are bit-identical to the naive pipeline; this binary cross-checks
//! that on every rep.
//!
//! Each stride also runs a thread sweep (1/2/4/auto workers) through the
//! banded scan, recording resolved thread counts, windows/s and the
//! bit-identity of every threaded run against the serial arm; the active
//! GEMM kernel backend is stamped into the report.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin scan -- \
//!     --scale 0.02 --steps 150 --tiles 6 --reps 3
//! ```
//!
//! Writes `results/BENCH_scan.json` (override the directory with `--out`).

use hotspot_bench::{build_benchmark, detector_config, oracle, ExperimentArgs};
use hotspot_core::{CascadeConfig, HotspotDetector, Parallelism, ScanConfig, ScanStage};
use hotspot_datagen::LayoutSpec;
use hotspot_geometry::{Clip, Point, Rect};
use std::time::Instant;

/// JSON number or `null` for non-finite values (a forced margin threshold
/// can be infinite).
fn json_f32(v: f32) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.02);
    let out_dir = args.string("out", "results");
    let reps = args.usize("reps", 3);
    let tiles = args.usize("tiles", 6);

    // A representative model, not a converged one (as in `throughput`).
    let mut config = detector_config(&args);
    let steps = args.usize("steps", 150);
    config.mgd.max_steps = steps;
    config.biased.initial.max_steps = steps;
    config.biased.fine_tune.max_steps = (steps / 4).max(1);
    config.biased.rounds = args.usize("rounds", 1);

    let sim = oracle();
    let data = build_benchmark(&hotspot_datagen::suite::SuiteSpec::industry3(scale), &sim);
    eprintln!("[scan] fitting detector ({steps} steps)...");
    let mut detector = HotspotDetector::fit(&data.train, &config).expect("detector fits the suite");
    // Primary arms run serial so the thread sweep below has a fixed
    // single-thread baseline to compare against.
    detector.set_parallelism(Parallelism::serial());

    // Cascade prefilter: AdaBoost on raw density features, margin
    // threshold calibrated on a held-out training split to a zero
    // false-negative target (grid 12 divides the 120 px scan window).
    let cascade_train = CascadeConfig {
        grid_dim: 12,
        rounds: args.usize("cascade-rounds", 64),
        target_fnr: args.f64("cascade-fnr", 0.0),
        holdout_fraction: 0.25,
    };
    eprintln!(
        "[scan] training cascade prefilter ({} rounds, target FNR {})...",
        cascade_train.rounds, cascade_train.target_fnr
    );
    let prefilter = detector
        .train_prefilter(&data.train, &cascade_train)
        .expect("prefilter trains");
    eprintln!(
        "[scan]   margin > {:.4}, holdout FNR {:.3}",
        prefilter.margin_threshold(),
        prefilter.calibrated().achieved_fnr()
    );

    let layout = LayoutSpec::uniform(tiles, tiles, 19).build();
    let window_nm = 1200i64;
    // Sparse companion layout for the cascade arm. The uniform layout
    // packs geometry into every tile, so nearly every window is a true
    // hotspot and no prefilter could clear half of them. A full-chip scan
    // is mostly quiet area — model that by keeping dense tiles only on a
    // 3×3 lattice (scattered IP blocks, 1 in 9 tiles) and blanking the
    // rest (tile shapes never cross their 1200 nm tile border).
    let sparse_layout = {
        let mut clip = Clip::new(layout.window());
        for shape in layout.shapes() {
            let (tx, ty) = (shape.lo().x / window_nm, shape.lo().y / window_nm);
            if tx % 3 == 0 && ty % 3 == 0 {
                clip.push(*shape);
            }
        }
        clip
    };
    eprintln!(
        "[scan] layout: {} x {} nm ({}x{} tiles)",
        layout.window().width(),
        layout.window().height(),
        tiles,
        tiles
    );

    // 600 nm is a multiple of the 100 nm DCT block (cached path);
    // 550 nm is only pixel-aligned (per-window fallback path).
    let mut entries = Vec::new();
    for (stride_nm, label) in [(600i64, "block-aligned"), (550i64, "unaligned")] {
        let scan_cfg = ScanConfig::new(stride_nm)
            .expect("positive stride")
            .with_window_nm(window_nm)
            .expect("positive window");

        let mut best_scan = f64::INFINITY;
        let mut report = None;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let r = detector.scan(&layout, &scan_cfg).expect("layout scans");
            best_scan = best_scan.min(start.elapsed().as_secs_f64());
            report = Some(r);
        }
        let report = report.expect("at least one rep ran");

        // Per-window scoring arm: the same scan forced to score_block = 1,
        // so the batched-vs-per-window delta isolates the GEMM batching.
        let single_cfg = scan_cfg.clone().with_score_block(1).expect("nonzero block");
        let mut best_single = f64::INFINITY;
        let mut single_identical = true;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let r = detector.scan(&layout, &single_cfg).expect("layout scans");
            best_single = best_single.min(start.elapsed().as_secs_f64());
            single_identical &= report
                .windows
                .iter()
                .zip(r.windows.iter())
                .all(|(a, b)| a.score.to_bits() == b.score.to_bits());
        }

        // GEMM invocations per window for each scoring mode (one extra
        // scan each; the counter is global, so measure them back-to-back).
        let g0 = hotspot_nn::gemm::gemm_call_count();
        let _ = detector.scan(&layout, &scan_cfg).expect("layout scans");
        let g1 = hotspot_nn::gemm::gemm_call_count();
        let _ = detector.scan(&layout, &single_cfg).expect("layout scans");
        let g2 = hotspot_nn::gemm::gemm_call_count();
        let gemm_batched = (g1 - g0) as f64 / report.windows.len() as f64;
        let gemm_single = (g2 - g1) as f64 / report.windows.len() as f64;

        // Naive reference: every window extracted and scored from scratch.
        let mut best_naive = f64::INFINITY;
        let mut identical = true;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let clips: Vec<Clip> = report
                .windows
                .iter()
                .map(|w| {
                    layout.extract_window(
                        Rect::from_size(Point::new(w.x_nm, w.y_nm), window_nm, window_nm)
                            .expect("window fits the layout"),
                    )
                })
                .collect();
            let naive = detector.predict_batch(&clips).expect("naive batch runs");
            best_naive = best_naive.min(start.elapsed().as_secs_f64());
            identical &= report
                .windows
                .iter()
                .zip(naive.iter())
                .all(|(w, p)| w.score.to_bits() == p.to_bits());
        }

        // Thread sweep: the banded scan at 1/2/4/auto workers. Scores,
        // regions and cache totals must stay bit-identical to the serial
        // arm at every width; only wall time may move.
        let mut thread_entries = Vec::new();
        for (requested, par) in [
            ("1", Parallelism::fixed(1).expect("nonzero")),
            ("2", Parallelism::fixed(2).expect("nonzero")),
            ("4", Parallelism::fixed(4).expect("nonzero")),
            ("auto", Parallelism::auto()),
        ] {
            detector.set_parallelism(par);
            let mut best_threaded = f64::INFINITY;
            let mut threaded_report = None;
            for _ in 0..reps.max(1) {
                let start = Instant::now();
                let r = detector.scan(&layout, &scan_cfg).expect("layout scans");
                best_threaded = best_threaded.min(start.elapsed().as_secs_f64());
                threaded_report = Some(r);
            }
            let tr = threaded_report.expect("at least one rep ran");
            let same = tr
                .windows
                .iter()
                .zip(report.windows.iter())
                .all(|(a, b)| a.score.to_bits() == b.score.to_bits())
                && tr.regions == report.regions
                && tr.cache == report.cache;
            let twps = tr.windows.len() as f64 / best_threaded;
            eprintln!(
                "[scan]   threads {requested} (resolved {}): {best_threaded:.3} s \
                 ({twps:.1} windows/s, {:.2}x vs serial, bit-identical: {same})",
                tr.threads,
                best_scan / best_threaded
            );
            thread_entries.push(format!(
                "{{ \"requested\": \"{requested}\", \"resolved\": {}, \
                 \"scan_secs\": {best_threaded:.6}, \"windows_per_sec\": {twps:.2}, \
                 \"speedup_vs_serial\": {:.3}, \"bit_identical_to_serial\": {same} }}",
                tr.threads,
                best_scan / best_threaded
            ));
        }
        detector.set_parallelism(Parallelism::serial());

        // Cascade arm, on the sparse layout: the calibrated prefilter
        // clears easy negatives so the CNN only scores survivors.
        // Survivor scores must stay bit-identical to the full scan of the
        // same layout, no full-scan hotspot window may go missing, and
        // the two-stage path must stay thread-invariant.
        let cascade_scan_cfg = scan_cfg.clone().with_cascade(prefilter.clone());
        let mut best_sparse_full = f64::INFINITY;
        let mut sparse_full = None;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let r = detector
                .scan(&sparse_layout, &scan_cfg)
                .expect("layout scans");
            best_sparse_full = best_sparse_full.min(start.elapsed().as_secs_f64());
            sparse_full = Some(r);
        }
        let sparse_full = sparse_full.expect("at least one rep ran");
        let mut best_cascade = f64::INFINITY;
        let mut cascade_report = None;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let r = detector
                .scan(&sparse_layout, &cascade_scan_cfg)
                .expect("cascade scans");
            best_cascade = best_cascade.min(start.elapsed().as_secs_f64());
            cascade_report = Some(r);
        }
        let cr = cascade_report.expect("at least one rep ran");
        let cascade_stats = cr.cascade.expect("cascade stats present");
        let survivors_identical = sparse_full
            .windows
            .iter()
            .zip(cr.windows.iter())
            .filter(|(_, c)| c.stage == ScanStage::Cnn)
            .all(|(f, c)| f.score.to_bits() == c.score.to_bits());
        let missed_hotspots = sparse_full
            .windows
            .iter()
            .zip(cr.windows.iter())
            .filter(|(f, c)| f.hotspot && !c.hotspot)
            .count();
        // A full-scan region is missed when no cascade region overlaps
        // its bounding box — clearing a region's fringe windows only
        // shrinks it, which is not a miss.
        let missed_regions = sparse_full
            .regions
            .iter()
            .filter(|fr| {
                !cr.regions.iter().any(|c| {
                    fr.x0_nm < c.x1_nm
                        && c.x0_nm < fr.x1_nm
                        && fr.y0_nm < c.y1_nm
                        && c.y0_nm < fr.y1_nm
                })
            })
            .count();
        let regions_identical = cr.regions == sparse_full.regions;
        let cnn_eval_reduction = sparse_full.windows.len() as f64 / cr.cnn_evals.max(1) as f64;
        let mut cascade_thread_entries = Vec::new();
        for workers in [1usize, 2, 4] {
            detector.set_parallelism(Parallelism::fixed(workers).expect("nonzero"));
            let mut best_ct = f64::INFINITY;
            let mut same = true;
            for _ in 0..reps.max(1) {
                let start = Instant::now();
                let r = detector
                    .scan(&sparse_layout, &cascade_scan_cfg)
                    .expect("cascade scans");
                best_ct = best_ct.min(start.elapsed().as_secs_f64());
                same &= r.regions == cr.regions
                    && r.cache == cr.cache
                    && r.windows.iter().zip(cr.windows.iter()).all(|(a, b)| {
                        a.score.to_bits() == b.score.to_bits()
                            && a.stage == b.stage
                            && a.margin.map(f32::to_bits) == b.margin.map(f32::to_bits)
                    });
            }
            cascade_thread_entries.push(format!(
                "{{ \"requested\": {workers}, \"scan_secs\": {best_ct:.6}, \
                 \"bit_identical_to_serial_cascade\": {same} }}"
            ));
        }
        detector.set_parallelism(Parallelism::serial());
        eprintln!(
            "[scan]   cascade (sparse layout, {} windows): {} cleared, {} forwarded \
             ({:.2} CNN evals/window, {cnn_eval_reduction:.2}x fewer CNN evals, \
             {best_cascade:.3} s vs full {best_sparse_full:.3} s [{:.2}x], \
             missed regions: {missed_regions}, \
             missed hotspot windows: {missed_hotspots}, \
             regions identical: {regions_identical})",
            sparse_full.windows.len(),
            cascade_stats.cleared,
            cascade_stats.forwarded,
            cr.cnn_evals_per_window(),
            best_sparse_full / best_cascade
        );

        let windows = report.windows.len();
        let wps = windows as f64 / best_scan;
        let single_wps = windows as f64 / best_single;
        eprintln!(
            "[scan] {label} stride {stride_nm} nm: {windows} windows in {best_scan:.3} s \
             ({wps:.1} windows/s batched [{gemm_batched:.2} GEMM/window], \
             per-window {best_single:.3} s [{single_wps:.1} windows/s, \
             {gemm_single:.2} GEMM/window], naive {best_naive:.3} s, {:.2}x, \
             cache hit rate {:.0}%, bit-identical: {identical}/{single_identical})",
            best_naive / best_scan,
            report.cache.hit_rate() * 100.0
        );
        entries.push(format!(
            "    {{ \"stride_nm\": {stride_nm}, \"label\": \"{label}\", \
             \"windows\": {windows}, \"scan_secs\": {best_scan:.6}, \
             \"windows_per_sec\": {wps:.2}, \
             \"gemm_calls_per_window\": {gemm_batched:.3}, \
             \"per_window\": {{ \"scan_secs\": {best_single:.6}, \
             \"windows_per_sec\": {single_wps:.2}, \
             \"gemm_calls_per_window\": {gemm_single:.3}, \
             \"bit_identical_to_batched\": {single_identical} }}, \
             \"batched_speedup_vs_per_window\": {:.3}, \
             \"naive_secs\": {best_naive:.6}, \
             \"speedup_vs_naive\": {:.3}, \"blocks_computed\": {}, \
             \"blocks_reused\": {}, \"cache_hit_rate\": {:.4}, \
             \"positives\": {}, \"regions\": {}, \"bit_identical_to_naive\": {identical}, \
             \"threads\": [ {} ], \
             \"cascade\": {{ \"layout\": \"sparse-lattice\", \"windows\": {}, \
             \"margin_threshold\": {}, \"achieved_fnr\": {:.6}, \
             \"cleared\": {}, \"forwarded\": {}, \
             \"cnn_evals_per_window\": {:.4}, \
             \"cnn_eval_reduction\": {cnn_eval_reduction:.3}, \
             \"scan_secs\": {best_cascade:.6}, \
             \"full_scan_secs\": {best_sparse_full:.6}, \
             \"speedup_vs_full_scan\": {:.3}, \
             \"positives\": {}, \"regions\": {}, \
             \"missed_regions\": {missed_regions}, \
             \"missed_hotspot_windows\": {missed_hotspots}, \
             \"regions_identical_to_full_scan\": {regions_identical}, \
             \"survivor_scores_bit_identical\": {survivors_identical}, \
             \"threads\": [ {} ] }} }}",
            best_single / best_scan,
            best_naive / best_scan,
            report.cache.computed,
            report.cache.hits,
            report.cache.hit_rate(),
            report.positives(),
            report.regions.len(),
            thread_entries.join(", "),
            sparse_full.windows.len(),
            json_f32(cascade_stats.margin_threshold),
            prefilter.calibrated().achieved_fnr(),
            cascade_stats.cleared,
            cascade_stats.forwarded,
            cr.cnn_evals_per_window(),
            best_sparse_full / best_cascade,
            cr.positives(),
            cr.regions.len(),
            cascade_thread_entries.join(", ")
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"industry3\",\n  \"scale\": {scale},\n  \
         \"layout_tiles\": {tiles},\n  \"window_nm\": {window_nm},\n  \
         \"train_steps\": {steps},\n  \"reps\": {reps},\n  \
         \"kernel_backend\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        hotspot_nn::gemm::kernel_backend().name(),
        entries.join(",\n")
    );
    print!("{json}");

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = format!("{out_dir}/BENCH_scan.json");
    std::fs::write(&path, &json).expect("write BENCH_scan.json");
    eprintln!("[scan] wrote {path}");
}
