//! Suite-matrix benchmark: per-family accuracy and throughput across the
//! registered benchmark suites.
//!
//! For every suite in `--suites` (default: one classic mix plus the three
//! topology suites) this benchmark:
//!
//! 1. generates the suite at `--scale`, timing the build (generation
//!    throughput, clips/s, litho labelling included);
//! 2. trains the biased-learning detector on the train split;
//! 3. evaluates on the test split (paper accuracy = hotspot recall, plus
//!    false alarms) and times batch prediction (inference clips/s);
//! 4. probes each pattern family in the suite's mix with freshly drawn,
//!    litho-labelled clips, reporting per-family detection accuracy —
//!    fresh draws, so family accuracy is measured on clips the model has
//!    never seen, not on memorised training geometry;
//! 5. for corner-grid suites, additionally trains the per-corner
//!    [`hotspot_core::CornerHead`] and reports corner-wise accuracy and
//!    severity error.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin suites -- \
//!     --scale 0.01 --steps 300 --probes 24
//! ```
//!
//! Writes `results/BENCH_suites.json` (override the directory with
//! `--out`).

use hotspot_bench::{build_benchmark, detector_config, oracle, ExperimentArgs};
use hotspot_core::corners::{CornerHead, CornerHeadConfig};
use hotspot_core::HotspotDetector;
use hotspot_datagen::patterns;
use hotspot_datagen::suite::SuiteSpec;
use hotspot_litho::LithoSimulator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Per-family probe: draw fresh clips, label with the oracle, score with
/// the trained detector at threshold 0.5. Returns (accuracy, hotspots).
fn probe_family(
    detector: &HotspotDetector,
    sim: &LithoSimulator,
    kind: patterns::PatternKind,
    probes: usize,
    seed: u64,
) -> (f64, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let clips: Vec<_> = (0..probes)
        .map(|_| patterns::sample_pattern(kind, &mut rng))
        .collect();
    let truth: Vec<bool> = clips.iter().map(|c| sim.label_clip(c)).collect();
    let scores = detector.predict_batch(&clips).expect("probe clips score");
    let hits = scores
        .iter()
        .zip(&truth)
        .filter(|&(&s, &t)| (s >= 0.5) == t)
        .count();
    (
        hits as f64 / probes as f64,
        truth.iter().filter(|&&t| t).count(),
    )
}

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.01);
    let out_dir = args.string("out", "results");
    let probes = args.usize("probes", 24);
    let suite_list = args.string("suites", "iccad,topo,vias,rdl");

    let mut config = detector_config(&args);
    let steps = args.usize("steps", 300);
    config.mgd.max_steps = steps;
    config.biased.initial.max_steps = steps;
    config.biased.fine_tune.max_steps = (steps / 4).max(1);
    config.biased.rounds = args.usize("rounds", 2);

    let sim = oracle();
    let mut suite_reports = Vec::new();
    for name in suite_list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        let spec = SuiteSpec::by_name(name, scale).unwrap_or_else(|| {
            panic!("unknown suite '{name}' ({})", SuiteSpec::REGISTRY.join("|"))
        });

        let gen_start = Instant::now();
        let data = build_benchmark(&spec, &sim);
        let gen_s = gen_start.elapsed().as_secs_f64();
        let total_clips = data.train.len() + data.test.len();

        eprintln!("[suites] {name}: training on {} clips...", data.train.len());
        let train_start = Instant::now();
        let detector = HotspotDetector::fit(&data.train, &config).expect("suite trains");
        let train_s = train_start.elapsed().as_secs_f64();

        let eval = detector.evaluate(&data.test).expect("suite evaluates");
        let test_clips: Vec<_> = data.test.iter().map(|s| s.clip.clone()).collect();
        let predict_start = Instant::now();
        let _ = detector
            .predict_batch(&test_clips)
            .expect("test set scores");
        let predict_s = predict_start.elapsed().as_secs_f64();
        let predict_rate = test_clips.len() as f64 / predict_s.max(1e-9);
        eprintln!(
            "[suites] {name}: accuracy {:.3}, {} false alarms, {:.0} clips/s inference",
            eval.accuracy, eval.false_alarms, predict_rate
        );

        let mut family_reports = Vec::new();
        for (fi, stats) in data.families.iter().enumerate() {
            let (acc, probe_hs) = probe_family(
                &detector,
                &sim,
                stats.kind,
                probes,
                spec.seed ^ 0xBE9C_0000 ^ fi as u64,
            );
            eprintln!(
                "[suites] {name}/{}: probe accuracy {acc:.3} ({probe_hs}/{probes} hotspots)",
                stats.kind.name()
            );
            family_reports.push(format!(
                "{{ \"family\": \"{}\", \"probe_accuracy\": {acc:.6}, \
                 \"probe_hotspots\": {probe_hs}, \"kept_hs\": {}, \"kept_nhs\": {}, \
                 \"crc\": \"{:08x}\" }}",
                stats.kind.name(),
                stats.kept_hs,
                stats.kept_nhs,
                stats.crc
            ));
        }

        let corner_json = if data.train.corner_schema().is_some() {
            let head_cfg = CornerHeadConfig {
                pipeline: config.pipeline.clone(),
                ..CornerHeadConfig::default()
            };
            let (head, report) =
                CornerHead::fit(&data.train, &head_cfg).expect("corner head trains");
            let corner_eval = head.evaluate(&data.test).expect("corner head evaluates");
            eprintln!(
                "[suites] {name}: corner head accuracy {:.3}, severity MAE {:.2}",
                corner_eval.corner_accuracy, corner_eval.severity_mae
            );
            format!(
                "{{ \"n_corners\": {}, \"final_loss\": {:.6}, \
                 \"corner_accuracy\": {:.6}, \"hotspot_accuracy\": {:.6}, \
                 \"severity_mae\": {:.6} }}",
                head.n_corners(),
                report.final_loss,
                corner_eval.corner_accuracy,
                corner_eval.hotspot_accuracy,
                corner_eval.severity_mae
            )
        } else {
            "null".into()
        };

        let schema_json = match data.spec.corner_grid.as_ref() {
            Some(grid) => format!("\"{}\"", grid.schema()),
            None => "null".into(),
        };
        suite_reports.push(format!(
            "{{\n    \"suite\": \"{name}\",\n    \"benchmark\": \"{}\",\n    \
             \"train_clips\": {},\n    \"test_clips\": {},\n    \"augmented\": {},\n    \
             \"corner_schema\": {schema_json},\n    \
             \"gen_s\": {gen_s:.3},\n    \"gen_clips_per_s\": {:.2},\n    \
             \"train_s\": {train_s:.3},\n    \
             \"accuracy\": {:.6},\n    \"false_alarms\": {},\n    \
             \"predict_clips_per_s\": {predict_rate:.2},\n    \
             \"families\": [ {} ],\n    \"corner_head\": {corner_json}\n  }}",
            spec.name,
            data.train.len(),
            data.test.len(),
            data.augmented,
            total_clips as f64 / gen_s.max(1e-9),
            eval.accuracy,
            eval.false_alarms,
            family_reports.join(", "),
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"suite-matrix\",\n  \"scale\": {scale},\n  \
         \"train_steps\": {steps},\n  \"probes_per_family\": {probes},\n  \
         \"suites\": [ {} ]\n}}\n",
        suite_reports.join(", ")
    );
    print!("{json}");

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = format!("{out_dir}/BENCH_suites.json");
    std::fs::write(&path, &json).expect("write BENCH_suites.json");
    eprintln!("[suites] wrote {path}");
}
