//! Label-efficiency benchmark for the batch active-learning loop.
//!
//! Three arms share one seed dataset, one unlabeled pool, and one test
//! set, differing only in which pool clips get litho labels:
//!
//! - **full supervision**: label the *entire* pool up front and train on
//!   seed + pool — the ROC-AUC ceiling, at maximum labelling cost.
//! - **active**: `--active-rounds` rounds of uncertainty + k-means
//!   diversity acquisition (`hotspot_core::train_active`), labelling
//!   `--active-batch` clips per round.
//! - **random**: the same round/batch schedule, but batches drawn
//!   uniformly at random — the sampling baseline active learning must
//!   beat (or match at lower cost).
//!
//! Each arm reports its labeler-call count and final test ROC-AUC; the
//! active and random arms also report the full per-round curve
//! (labels used → AUC), reconstructed from the v2 checkpoints the active
//! run persists at every round boundary. The headline figures are
//! `active_auc_fraction_of_full` (target: ≥ 0.99) and
//! `labels_fraction_of_pool` (target: ≤ 0.5).
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin active -- \
//!     --scale 0.01 --steps 300 --pool 120 --active-rounds 5 --active-batch 10
//! ```
//!
//! Writes `results/BENCH_active.json` (override the directory with
//! `--out`).

use hotspot_bench::{build_benchmark, detector_config, oracle, ExperimentArgs};
use hotspot_core::mgd::MgdConfig;
use hotspot_core::{roc, ActiveConfig, Checkpoint, RunIdentity, TrainSession};
use hotspot_datagen::{ClipPool, Dataset, Sample};
use hotspot_litho::{Labeler, LithoLabeler};
use hotspot_nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;

const AUC_STEPS: usize = 256;

fn curve_json(curve: &[(usize, f64)]) -> String {
    let points: Vec<String> = curve
        .iter()
        .map(|(labels, auc)| format!("{{ \"labels\": {labels}, \"auc\": {auc:.6} }}"))
        .collect();
    format!("[ {} ]", points.join(", "))
}

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.005);
    let out_dir = args.string("out", "results");
    let pool_size = args.usize("pool", 120);
    let pool_seed = args.usize("pool-seed", 7) as u64;
    let rounds = args.usize("active-rounds", 5);
    let batch = args.usize("active-batch", 10);

    let mut config = detector_config(&args);
    let steps = args.usize("steps", 500);
    config.mgd.max_steps = steps;
    config.biased.initial.max_steps = steps;
    config.biased.fine_tune.max_steps = (steps / 4).max(1);
    config.biased.rounds = args.usize("rounds", 2);
    // Fine-tuning after each acquisition needs enough budget to beat the
    // seed model's validation score — `train` restores the best-val
    // snapshot, so an under-budgeted fine-tune is silently a no-op.
    let ft_steps = args.usize("active-ft-steps", (steps / 2).max(1));

    let sim = oracle();
    let spec = hotspot_datagen::suite::SuiteSpec::iccad(scale);
    let data = build_benchmark(&spec, &sim);
    let pool = ClipPool::synthetic(&spec.mix, pool_size, pool_seed);
    let pipeline = config.pipeline.clone();
    let (test_features, test_labels) = pipeline
        .extract_dataset(&data.test)
        .expect("test set extracts");
    let auc_of = |net: &hotspot_nn::Network| -> f64 {
        roc::auc(net, &test_features, &test_labels, AUC_STEPS)
    };

    let active_cfg = ActiveConfig {
        rounds,
        batch,
        clusters: args.usize("active-clusters", 0),
        candidate_factor: args.usize("active-factor", 4),
        epsilon: args.f64("active-epsilon", 0.1) as f32,
        fine_tune: MgdConfig {
            max_steps: ft_steps,
            ..config.schedule().fine_tune
        },
        seed: args.usize("active-seed", 13) as u64,
    };
    let schedule_rounds = config.biased.rounds;

    // --- Arm 1: full supervision (label the whole pool up front). -------
    eprintln!("[active] full-supervision arm: labelling all {pool_size} pool clips...");
    let full_labeler = LithoLabeler::new(oracle());
    let full_set: Dataset = data
        .train
        .iter()
        .cloned()
        .chain(
            pool.clips()
                .iter()
                .map(|clip| Sample::new(clip.clone(), full_labeler.label(clip))),
        )
        .collect();
    let full_calls = full_labeler.calls();
    eprintln!(
        "[active] full-supervision arm: training on {} clips...",
        full_set.len()
    );
    let full = hotspot_core::HotspotDetector::fit(&full_set, &config).expect("full arm trains");
    let full_auc = auc_of(full.network());
    eprintln!("[active]   full supervision: {full_calls} labels, AUC {full_auc:.4}");

    // --- Arm 2: batch active learning. -----------------------------------
    eprintln!("[active] active arm: {rounds} rounds x {batch} clips...");
    let active_labeler = LithoLabeler::new(oracle());
    let identity = RunIdentity {
        seed: config.mgd.seed,
        threads: config.mgd.threads,
        tag: "bench-active".into(),
    };
    // Round-boundary snapshots (no mid-round trainer, schedule finished,
    // every labelled batch fine-tuned) reconstruct the learning curve.
    let snapshots: RefCell<Vec<Checkpoint>> = RefCell::new(Vec::new());
    let (active_detector, active_report) = hotspot_core::train_active(
        &data.train,
        &pool,
        &active_labeler,
        &config,
        &active_cfg,
        &identity,
        None,
        0,
        &mut |ckpt| {
            let fine_tuned = ckpt.completed.len().saturating_sub(schedule_rounds);
            let labelled = ckpt.active.as_ref().map_or(0, |a| a.rounds.len());
            if ckpt.trainer.is_none()
                && ckpt.completed.len() >= schedule_rounds
                && fine_tuned == labelled
            {
                snapshots.borrow_mut().push(ckpt.clone());
            }
            Ok(())
        },
    )
    .expect("active arm trains");
    let active_curve: Vec<(usize, f64)> = snapshots
        .into_inner()
        .iter()
        .map(|ckpt| {
            let mut net = config.reconciled_cnn().build();
            ckpt.apply(&mut net).expect("snapshot applies");
            let labels: usize = ckpt
                .active
                .as_ref()
                .map_or(0, |a| a.rounds.iter().map(|r| r.selected.len()).sum());
            (labels, auc_of(&net))
        })
        .collect();
    let active_auc = auc_of(active_detector.network());
    let active_calls = active_report.labeler_calls;
    eprintln!("[active]   active: {active_calls} labels, AUC {active_auc:.4}");

    // --- Arm 3: random sampling at the same budget. ----------------------
    eprintln!("[active] random arm: same schedule, uniform batches...");
    let random_labeler = LithoLabeler::new(oracle());
    let (seed_features, seed_labels) = pipeline
        .extract_dataset(&data.train)
        .expect("seed set extracts");
    let mut session = TrainSession::new(
        config.reconciled_cnn().build(),
        seed_features,
        seed_labels,
        config.schedule(),
    );
    session
        .run_schedule(0, &mut |_, _| Ok(()))
        .expect("random arm schedule trains");
    let mut random_curve = vec![(0usize, auc_of(session.network()))];
    let mut rng = StdRng::seed_from_u64(active_cfg.seed ^ 0x5EED);
    let mut unlabeled: Vec<usize> = (0..pool.len()).collect();
    for round in 0..rounds {
        let take = batch.min(unlabeled.len());
        if take == 0 {
            break;
        }
        let mut picks = Vec::with_capacity(take);
        for _ in 0..take {
            picks.push(unlabeled.swap_remove(rng.gen_range(0..unlabeled.len())));
        }
        let tensors: Vec<Tensor> = picks
            .iter()
            .map(|&i| {
                pipeline
                    .extract(&pool.clips()[i])
                    .expect("pool clip extracts")
            })
            .collect();
        let labels: Vec<bool> = picks
            .iter()
            .map(|&i| random_labeler.label(&pool.clips()[i]))
            .collect();
        session.append(tensors, &labels).expect("batch appends");
        let cfg = MgdConfig {
            seed: active_cfg
                .fine_tune
                .seed
                .wrapping_add((round as u64 + 1) * 0x9E37),
            ..active_cfg.fine_tune.clone()
        };
        session
            .fine_tune(active_cfg.epsilon, &cfg, 0, &mut |_, _| Ok(()))
            .expect("random arm fine-tunes");
        random_curve.push((random_labeler.calls(), auc_of(session.network())));
    }
    let random_calls = random_labeler.calls();
    let random_auc = random_curve.last().map_or(0.0, |&(_, auc)| auc);
    eprintln!("[active]   random: {random_calls} labels, AUC {random_auc:.4}");

    // --- Report. ----------------------------------------------------------
    let auc_fraction = if full_auc > 0.0 {
        active_auc / full_auc
    } else {
        0.0
    };
    let labels_fraction = active_calls as f64 / pool_size as f64;
    let meets = auc_fraction >= 0.99 && labels_fraction <= 0.5;
    eprintln!(
        "[active] active/full AUC = {auc_fraction:.4} at {:.0}% of pool labels ({})",
        100.0 * labels_fraction,
        if meets { "target met" } else { "TARGET MISSED" }
    );

    let json = format!(
        "{{\n  \"benchmark\": \"{}\",\n  \"scale\": {scale},\n  \
         \"seed_clips\": {},\n  \"pool_size\": {pool_size},\n  \
         \"rounds\": {rounds},\n  \"batch\": {batch},\n  \
         \"train_steps\": {steps},\n  \"auc_sweep_steps\": {AUC_STEPS},\n  \
         \"full_supervision\": {{ \"labeler_calls\": {full_calls}, \"labeler_cost_s\": {:.1}, \"auc\": {full_auc:.6} }},\n  \
         \"active\": {{ \"labeler_calls\": {active_calls}, \"labeler_cost_s\": {:.1}, \"auc\": {active_auc:.6}, \"curve\": {} }},\n  \
         \"random\": {{ \"labeler_calls\": {random_calls}, \"labeler_cost_s\": {:.1}, \"auc\": {random_auc:.6}, \"curve\": {} }},\n  \
         \"active_auc_fraction_of_full\": {auc_fraction:.6},\n  \
         \"labels_fraction_of_pool\": {labels_fraction:.6},\n  \
         \"meets_99pct_auc_at_half_pool_labels\": {meets}\n}}\n",
        spec.name,
        data.train.len(),
        full_labeler.cost_s(),
        active_labeler.cost_s(),
        curve_json(&active_curve),
        random_labeler.cost_s(),
        curve_json(&random_curve),
    );
    print!("{json}");

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = format!("{out_dir}/BENCH_active.json");
    std::fs::write(&path, &json).expect("write BENCH_active.json");
    eprintln!("[active] wrote {path}");
}
