//! Extension study: how biased learning trades calibration for recall.
//!
//! Theorem 1's mechanism is *confidence reduction* on the non-hotspot
//! class. This study measures it directly: expected calibration error
//! (ECE), hotspot recall and false alarms after each biased-learning
//! round. The expected shape: ECE grows with ε (the model is deliberately
//! mis-calibrated towards "hotspot"), recall rises, false alarms rise
//! slowly.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin calibration_study -- \
//!     --scale 0.02 --steps 800
//! ```

use hotspot_bench::{build_benchmark, detector_config, oracle, table, ExperimentArgs};
use hotspot_core::calibration::expected_calibration_error;
use hotspot_core::metrics::EvalResult;
use hotspot_core::mgd::{self, MgdConfig};
use hotspot_datagen::suite::SuiteSpec;

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.02);
    let out_dir = args.string("out", "results");
    let config = detector_config(&args);
    let steps = args.usize("steps", 800);

    let sim = oracle();
    let data = build_benchmark(&SuiteSpec::iccad(scale), &sim);
    eprintln!("[calibration] extracting feature tensors...");
    let (train_x, train_y) = config
        .pipeline
        .extract_dataset(&data.train)
        .expect("extraction");
    let (test_x, test_y) = config
        .pipeline
        .extract_dataset(&data.test)
        .expect("extraction");

    let mut net = hotspot_core::model::CnnConfig {
        input_grid: config.pipeline.grid_dim(),
        input_channels: config.pipeline.coefficients(),
        ..config.cnn
    }
    .build();
    let initial_cfg = MgdConfig {
        max_steps: steps,
        ..config.mgd.clone()
    };
    let fine_cfg = MgdConfig {
        max_steps: (steps / 4).max(1),
        lr: config.mgd.lr * 0.5,
        ..config.mgd.clone()
    };

    let headers = ["epsilon", "ECE", "recall", "FA#", "overall"];
    let mut rows = Vec::new();
    let mut record = |net: &hotspot_nn::Network, eps: f32| {
        let ece = expected_calibration_error(net, &test_x, &test_y, 10);
        let preds = mgd::predict_all(net, &test_x);
        let r = EvalResult::from_predictions(&preds, &test_y, 0.0);
        rows.push(vec![
            format!("{eps:.1}"),
            format!("{ece:.4}"),
            table::pct(r.accuracy),
            r.false_alarms.to_string(),
            table::pct(r.overall_accuracy()),
        ]);
    };

    eprintln!("[calibration] training ε = 0 model...");
    mgd::train(&mut net, &train_x, &train_y, 0.0, &initial_cfg).expect("training runs");
    record(&net, 0.0);
    for eps in [0.1f32, 0.2, 0.3] {
        eprintln!("[calibration] fine-tuning ε = {eps}...");
        mgd::train(&mut net, &train_x, &train_y, eps, &fine_cfg).expect("training runs");
        record(&net, eps);
    }

    println!("\nCalibration study (ICCAD benchmark): biased learning trades\ncalibration (ECE ↑) for hotspot recall:\n");
    println!("{}", table::render(&headers, &rows));
    table::write_csv(&out_dir, "calibration_study", &headers, &rows);
}
