//! Serve-daemon benchmark: sustained predict throughput and latency
//! percentiles of the micro-batching Unix-socket daemon under concurrent
//! clients, plus a bit-identity cross-check against offline
//! [`HotspotDetector::predict_batch`].
//!
//! An in-process daemon is bound to a temp socket and `--clients`
//! threads stream `--requests` predict requests each over persistent
//! connections (closed-loop: every thread waits for its reply before
//! sending the next request, so the daemon is continuously saturated
//! with exactly `--clients` outstanding requests and the micro-batcher
//! has real coalescing opportunities). Latency is measured per request
//! from send to reply; sustained req/s is total completed requests over
//! the measurement wall time.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin serve -- \
//!     --clients 4 --requests 25 --clips 2
//! ```
//!
//! Writes `results/BENCH_serve.json` (override the directory with
//! `--out`).

use hotspot_bench::ExperimentArgs;
use hotspot_core::api::{ClipSpec, PredictRequest, PredictResponse, Request};
use hotspot_core::{CnnConfig, HotspotDetector, ModelFile};
use hotspot_geometry::{Clip, Rect};
use hotspot_nn::gemm::kernel_backend;
use hotspot_nn::serialize::ParameterBlob;
use hotspot_server::{client_roundtrip, ClientConn, ServeModel, Server, ServerConfig};
use std::time::Instant;

/// Deterministic 1200 nm clip content, varied per request.
fn clip(variant: i64) -> Clip {
    let mut c = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
    let pitch = 120 + 10 * (variant % 7);
    let mut x = 40 + 7 * (variant % 5);
    while x + 60 < 1200 {
        c.push(Rect::new(x, 100 + (variant % 3) * 40, x + 60, 1100).unwrap());
        x += pitch;
    }
    c.push(Rect::new(100, 560 + (variant % 4) * 20, 1100, 640).unwrap());
    c
}

fn request_line(client: usize, seq: usize, clips_per_request: usize) -> String {
    let clips: Vec<ClipSpec> = (0..clips_per_request)
        .map(|c| ClipSpec::from_clip(&clip((client * 1000 + seq * 10 + c) as i64)))
        .collect();
    Request::Predict(PredictRequest {
        id: format!("bench-{client}-{seq}"),
        clips,
        threshold: 0.5,
    })
    .render()
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

fn main() {
    let args = ExperimentArgs::from_env();
    let out_dir = args.string("out", "results");
    let clients = args.usize("clients", 4).max(1);
    let requests = args.usize("requests", 25).max(1);
    let clips_per_request = args.usize("clips", 2).max(1);
    let queue = args.usize("queue", 64);
    let k = args.usize("k", 8);

    // The paper architecture at its serving geometry; seeded init —
    // serving throughput does not depend on convergence.
    let cnn = CnnConfig {
        input_grid: 12,
        input_channels: k,
        ..CnnConfig::default()
    };
    let mut net = cnn.build();
    let model_file = ModelFile {
        resolution_nm: 10,
        grid: 12,
        k,
        blob: ParameterBlob::from_network(&mut net),
    };
    let model = ServeModel::from_parts(&model_file, None).expect("build serve model");

    let socket =
        std::env::temp_dir().join(format!("hotspot-serve-bench-{}.sock", std::process::id()));
    let mut config = ServerConfig::new(&socket);
    config.queue_capacity = queue;
    let server = Server::bind(model, &config).expect("bind daemon socket");
    let engine = server.engine().clone();
    let daemon = std::thread::spawn(move || server.run().expect("daemon run"));
    while ClientConn::connect(&socket).is_err() {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // Warm-up: one request per client primes plans and the page cache.
    for c in 0..clients {
        client_roundtrip(&socket, &request_line(c, 7777, clips_per_request)).expect("warm-up");
    }

    let wall = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut conn = ClientConn::connect(&socket).expect("client connect");
                let mut latencies_ms = Vec::with_capacity(requests);
                let mut first_reply = None;
                for seq in 0..requests {
                    let line = request_line(c, seq, clips_per_request);
                    let sent = Instant::now();
                    let reply = conn.request(&line).expect("predict reply");
                    latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                    assert!(reply.contains("\"ok\": true"), "bench reply: {reply}");
                    if first_reply.is_none() {
                        first_reply = Some(reply);
                    }
                }
                (latencies_ms, first_reply.unwrap())
            })
        })
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * requests);
    let mut first_replies = Vec::with_capacity(clients);
    for (c, worker) in workers.into_iter().enumerate() {
        let (lat, first) = worker.join().expect("client thread");
        latencies_ms.extend(lat);
        first_replies.push((c, first));
    }
    let wall_s = wall.elapsed().as_secs_f64();

    // Cross-check: daemon replies are bit-identical to offline scoring.
    let detector = HotspotDetector::from_network(
        model_file.pipeline().expect("pipeline"),
        model_file.network().expect("network"),
    );
    for (c, reply) in &first_replies {
        let parsed = PredictResponse::parse(reply).expect("parse predict reply");
        let clips: Vec<Clip> = (0..clips_per_request)
            .map(|i| clip((c * 1000 + i) as i64))
            .collect();
        let offline = detector.predict_batch(&clips).expect("offline reference");
        assert_eq!(parsed.scores.len(), offline.len());
        for (served, reference) in parsed.scores.iter().zip(&offline) {
            assert_eq!(
                served.to_bits(),
                reference.to_bits(),
                "daemon diverged from offline predict_batch"
            );
        }
    }

    let counters = engine.counters();
    let shutdown = Request::Shutdown { id: "bench".into() }.render();
    client_roundtrip(&socket, &shutdown).expect("shutdown");
    daemon.join().expect("daemon thread");

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total = latencies_ms.len();
    let req_per_sec = total as f64 / wall_s;
    let mean_ms = latencies_ms.iter().sum::<f64>() / total as f64;
    let p50_ms = percentile(&latencies_ms, 50.0);
    let p99_ms = percentile(&latencies_ms, 99.0);
    let max_ms = latencies_ms[total - 1];
    let clips_per_batch = if counters.batches > 0 {
        counters.clips as f64 / counters.batches as f64
    } else {
        0.0
    };

    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \
         \"kernel_backend\": \"{}\",\n  \
         \"clients\": {clients},\n  \"requests_per_client\": {requests},\n  \
         \"clips_per_request\": {clips_per_request},\n  \
         \"queue_capacity\": {queue},\n  \
         \"feature_shape\": [{k}, 12, 12],\n  \
         \"total_requests\": {total},\n  \"wall_secs\": {wall_s:.6},\n  \
         \"sustained_req_per_sec\": {req_per_sec:.2},\n  \
         \"latency_ms\": {{ \"mean\": {mean_ms:.3}, \"p50\": {p50_ms:.3}, \
         \"p99\": {p99_ms:.3}, \"max\": {max_ms:.3} }},\n  \
         \"micro_batches\": {},\n  \"max_batch_clips\": {},\n  \
         \"mean_clips_per_batch\": {clips_per_batch:.3},\n  \
         \"rejected_busy\": {},\n  \
         \"bit_identical_vs_offline\": true\n}}\n",
        kernel_backend().name(),
        counters.batches,
        counters.max_batch,
        counters.rejected_busy
    );
    print!("{json}");

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = format!("{out_dir}/BENCH_serve.json");
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {path}");
}
