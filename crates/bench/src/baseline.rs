//! Training and Table-2 evaluation of the three compared detectors.

use hotspot_baselines::{
    AdaBoost, AdaBoostConfig, Classifier, OnlineLogistic, OnlineLogisticConfig,
};
use hotspot_core::detector::{DetectorConfig, HotspotDetector};
use hotspot_core::metrics::EvalResult;
use hotspot_core::CoreError;
use hotspot_datagen::suite::BenchmarkData;
use hotspot_datagen::Dataset;
use hotspot_features::{ccs_feature, density_feature, CcsSpec};
use hotspot_geometry::raster;
use std::time::Instant;

/// Raster resolution shared with the CNN pipeline (nm per pixel).
pub const RESOLUTION_NM: u32 = 10;
/// Density grid dimension for the SPIE'15 baseline (matches the paper's
/// 12×12 clip division).
pub const DENSITY_GRID: usize = 12;

/// Extracts density feature vectors for every clip of a dataset.
///
/// # Panics
///
/// Panics if the raster is incompatible with the density grid (cannot
/// happen for suite-generated 1200 nm clips at 10 nm/px).
pub fn density_features(data: &Dataset) -> Vec<Vec<f32>> {
    data.iter()
        .map(|s| {
            let img = raster::rasterize_clip(&s.clip.normalized(), RESOLUTION_NM);
            density_feature(&img, DENSITY_GRID).expect("suite clips divide into the density grid")
        })
        .collect()
}

/// Extracts CCS feature vectors for every clip of a dataset.
pub fn ccs_features(data: &Dataset, spec: &CcsSpec) -> Vec<Vec<f32>> {
    data.iter()
        .map(|s| {
            let img = raster::rasterize_clip(&s.clip.normalized(), RESOLUTION_NM);
            ccs_feature(&img, spec).expect("CCS spec is valid")
        })
        .collect()
}

fn labels_of(data: &Dataset) -> Vec<bool> {
    data.iter().map(|s| s.hotspot).collect()
}

/// Trains and evaluates the SPIE'15-style detector (AdaBoost on density
/// features), timing only the test-side work as the paper's CPU column
/// does.
///
/// # Errors
///
/// Propagates AdaBoost training failures (degenerate training sets).
pub fn eval_spie15(data: &BenchmarkData) -> Result<EvalResult, hotspot_baselines::BaselineError> {
    let train_x = density_features(&data.train);
    let train_y = labels_of(&data.train);
    let model = AdaBoost::fit(&train_x, &train_y, &AdaBoostConfig::default())?;
    let start = Instant::now();
    let test_x = density_features(&data.test);
    let predictions: Vec<bool> = test_x.iter().map(|f| model.predict(f)).collect();
    let eval_time = start.elapsed().as_secs_f64();
    Ok(EvalResult::from_predictions(
        &predictions,
        &labels_of(&data.test),
        eval_time,
    ))
}

/// Trains and evaluates the ICCAD'16-style detector (online logistic on
/// CCS features).
///
/// # Errors
///
/// Propagates training failures (degenerate training sets).
pub fn eval_iccad16(data: &BenchmarkData) -> Result<EvalResult, hotspot_baselines::BaselineError> {
    let spec = CcsSpec::default();
    let train_x = ccs_features(&data.train, &spec);
    let train_y = labels_of(&data.train);
    // Compensate class imbalance: weight hotspot gradients by the class
    // ratio (capped), mirroring the recall-oriented tuning of the original
    // detector.
    let pos = train_y.iter().filter(|&&l| l).count().max(1);
    let neg = (train_y.len() - pos).max(1);
    let config = OnlineLogisticConfig {
        positive_weight: (neg as f32 / pos as f32).clamp(1.0, 12.0),
        ..OnlineLogisticConfig::default()
    };
    let model = OnlineLogistic::fit(&train_x, &train_y, &config)?;
    let start = Instant::now();
    let test_x = ccs_features(&data.test, &spec);
    let predictions: Vec<bool> = test_x.iter().map(|f| model.predict(f)).collect();
    let eval_time = start.elapsed().as_secs_f64();
    Ok(EvalResult::from_predictions(
        &predictions,
        &labels_of(&data.test),
        eval_time,
    ))
}

/// Trains and evaluates this paper's detector (feature tensor + CNN +
/// biased learning). Returns the evaluation plus the trained detector for
/// follow-up experiments.
///
/// # Errors
///
/// Propagates training failures.
pub fn eval_ours(
    data: &BenchmarkData,
    config: &DetectorConfig,
) -> Result<(EvalResult, HotspotDetector), CoreError> {
    let detector = HotspotDetector::fit(&data.train, config)?;
    let result = detector.evaluate(&data.test)?;
    Ok((result, detector))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_datagen::suite::SuiteSpec;
    use hotspot_datagen::PatternKind;
    use hotspot_litho::{LithoConfig, LithoSimulator};

    fn tiny_benchmark() -> BenchmarkData {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        SuiteSpec {
            name: "tiny".into(),
            train_hs: 120,
            train_nhs: 120,
            test_hs: 40,
            test_nhs: 40,
            // Line-tip arrays: hotspot ↔ narrow lines, so block densities
            // carry the label and the flattened baselines can learn it.
            mix: vec![(PatternKind::LineTips, 1.0)],
            // Pinned to a draw where both baselines clear the bar with
            // margin; the bound checks learnability, not a specific seed.
            seed: 48,
            version: hotspot_datagen::suite::SUITE_VERSION,
            corner_grid: None,
            augment: None,
        }
        .build(&sim)
    }

    #[test]
    fn baselines_beat_chance_on_easy_benchmark() {
        let data = tiny_benchmark();
        let spie = eval_spie15(&data).unwrap();
        let iccad = eval_iccad16(&data).unwrap();
        // Tip arrays are separable by density alone: both baselines should
        // do clearly better than guessing on a balanced test set.
        assert!(
            spie.overall_accuracy() > 0.6,
            "spie {}",
            spie.overall_accuracy()
        );
        assert!(
            iccad.overall_accuracy() > 0.6,
            "iccad {}",
            iccad.overall_accuracy()
        );
        assert!(spie.odst_s >= spie.eval_time_s);
    }

    #[test]
    fn feature_extractors_produce_consistent_lengths() {
        let data = tiny_benchmark();
        let dens = density_features(&data.train);
        assert!(dens.iter().all(|f| f.len() == DENSITY_GRID * DENSITY_GRID));
        let spec = CcsSpec::default();
        let ccs = ccs_features(&data.train, &spec);
        assert!(ccs.iter().all(|f| f.len() == spec.feature_len()));
    }
}
