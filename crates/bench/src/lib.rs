//! Experiment harness shared by the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the experiment index); this library holds the
//! pieces they share: a tiny argument parser, baseline detector evaluation,
//! and plain-text/CSV table rendering.

pub mod args;
pub mod baseline;
pub mod table;

pub use args::ExperimentArgs;

use hotspot_datagen::suite::{BenchmarkData, SuiteSpec};
use hotspot_litho::{LithoConfig, LithoSimulator};

/// Builds the lithography oracle used by every experiment.
///
/// # Panics
///
/// Panics only if the suite-wide default configuration were invalid, which
/// tests guarantee it is not.
pub fn oracle() -> LithoSimulator {
    LithoSimulator::new(LithoConfig::default()).expect("default litho config is valid")
}

/// Builds the CNN detector configuration shared by the experiments from
/// the common flags: `--k` (feature-tensor coefficients, default 32),
/// `--steps` (initial MGD step budget, default 800), `--batch` (default
/// 32), `--seed`, `--rounds` (biased-learning rounds, default 4) and
/// `--eps-step` (bias step, default 0.1).
pub fn detector_config(args: &ExperimentArgs) -> hotspot_core::DetectorConfig {
    use hotspot_core::{BiasedLearningConfig, DetectorConfig, MgdConfig};

    let steps = args.usize("steps", 800);
    let mgd = MgdConfig {
        lr: 1e-3,
        alpha: 0.5,
        decay_step: (steps / 3).max(1),
        batch_size: args.usize("batch", 32),
        max_steps: steps,
        val_interval: (steps / 10).max(1),
        patience: 5,
        val_fraction: 0.25,
        seed: args.u64("seed", 42),
        balanced_sampling: true,
        threads: 1,
    };
    let fine_tune = MgdConfig {
        max_steps: (steps / 4).max(1),
        lr: 5e-4,
        ..mgd.clone()
    };
    let mut config = DetectorConfig::default();
    config.pipeline = hotspot_core::FeaturePipeline::new(10, 12, args.usize("k", 32))
        .expect("valid pipeline parameters");
    config.mgd = mgd.clone();
    config.biased = BiasedLearningConfig {
        epsilon_step: args.f64("eps-step", 0.1) as f32,
        rounds: args.usize("rounds", 4),
        initial: mgd,
        fine_tune,
    };
    config
}

/// Generates one benchmark at the given scale, logging progress.
pub fn build_benchmark(spec: &SuiteSpec, sim: &LithoSimulator) -> BenchmarkData {
    eprintln!(
        "[datagen] building {} (train {}+{}, test {}+{})...",
        spec.name, spec.train_hs, spec.train_nhs, spec.test_hs, spec.test_nhs
    );
    let data = spec.build(sim);
    eprintln!("[datagen] {} ready ({} clips)", spec.name, spec.total());
    data
}
