//! Minimal `--key value` argument parsing for the experiment binaries
//! (kept dependency-free; the approved crate list has no CLI parser).

use std::collections::HashMap;

/// Parsed experiment arguments with typed accessors and defaults.
///
/// # Examples
///
/// ```
/// use hotspot_bench::ExperimentArgs;
///
/// let args = ExperimentArgs::from_iter(["--scale", "0.05", "--steps", "400"]);
/// assert_eq!(args.f64("scale", 0.02), 0.05);
/// assert_eq!(args.usize("steps", 800), 400);
/// assert_eq!(args.usize("k", 32), 32); // default
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExperimentArgs {
    values: HashMap<String, String>,
}

impl ExperimentArgs {
    /// Parses the process arguments (skipping `argv[0]`).
    pub fn from_env() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit token stream of `--key value` pairs.
    ///
    /// # Panics
    ///
    /// Panics on a token that does not start with `--` or a trailing key
    /// with no value — experiment invocations should fail loudly.
    #[allow(clippy::should_implement_trait)] // panics on bad input by design
    pub fn from_iter<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values = HashMap::new();
        let mut iter = tokens.into_iter().map(Into::into);
        while let Some(key) = iter.next() {
            let name = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got '{key}'"))
                .to_string();
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("flag --{name} needs a value"));
            values.insert(name, value);
        }
        ExperimentArgs { values }
    }

    /// Raw string lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// `f64` flag with default.
    ///
    /// # Panics
    ///
    /// Panics when the value does not parse.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got '{v}'"))
            })
            .unwrap_or(default)
    }

    /// `usize` flag with default.
    ///
    /// # Panics
    ///
    /// Panics when the value does not parse.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got '{v}'"))
            })
            .unwrap_or(default)
    }

    /// `u64` flag with default.
    ///
    /// # Panics
    ///
    /// Panics when the value does not parse.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got '{v}'"))
            })
            .unwrap_or(default)
    }

    /// String flag with default.
    pub fn string(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs() {
        let a = ExperimentArgs::from_iter(["--x", "1.5", "--name", "iccad"]);
        assert_eq!(a.f64("x", 0.0), 1.5);
        assert_eq!(a.string("name", "?"), "iccad");
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn defaults_apply() {
        let a = ExperimentArgs::from_iter::<_, String>([]);
        assert_eq!(a.usize("steps", 7), 7);
        assert_eq!(a.u64("seed", 9), 9);
    }

    #[test]
    #[should_panic(expected = "expected --flag")]
    fn rejects_bare_tokens() {
        let _ = ExperimentArgs::from_iter(["scale", "1.0"]);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn rejects_missing_value() {
        let _ = ExperimentArgs::from_iter(["--scale"]);
    }

    #[test]
    #[should_panic(expected = "expects a number")]
    fn rejects_bad_number() {
        let a = ExperimentArgs::from_iter(["--scale", "abc"]);
        let _ = a.f64("scale", 1.0);
    }
}
