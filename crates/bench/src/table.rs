//! Plain-text table rendering and CSV output for experiment results.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Renders an aligned plain-text table.
///
/// # Examples
///
/// ```
/// let s = hotspot_bench::table::render(
///     &["bench", "accu"],
///     &[vec!["ICCAD".into(), "98.2%".into()]],
/// );
/// assert!(s.contains("ICCAD"));
/// assert!(s.lines().count() >= 3);
/// ```
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Writes rows as CSV under `dir/name.csv`, creating the directory.
///
/// # Panics
///
/// Panics on I/O failure — experiment outputs must not be silently lost.
pub fn write_csv(dir: &str, name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir_path = Path::new(dir);
    fs::create_dir_all(dir_path).expect("create results directory");
    let path = dir_path.join(format!("{name}.csv"));
    let mut file = fs::File::create(&path).expect("create csv file");
    writeln!(file, "{}", headers.join(",")).expect("write csv header");
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        writeln!(file, "{}", escaped.join(",")).expect("write csv row");
    }
    eprintln!("[csv] wrote {}", path.display());
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Formats seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let s = render(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("hotspot-bench-test");
        let dir_s = dir.to_str().unwrap();
        write_csv(
            dir_s,
            "unit",
            &["a", "b"],
            &[vec!["1,5".into(), "x\"y".into()]],
        );
        let content = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("\"1,5\""));
        assert!(content.contains("\"x\"\"y\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.955), "95.5%");
        assert_eq!(secs(12.34), "12.3");
    }
}
