//! Criterion bench: the data-generation substrate — pattern sampling,
//! rasterisation, and full lithography labelling per clip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotspot_datagen::{patterns, PatternKind};
use hotspot_geometry::raster;
use hotspot_litho::{LithoConfig, LithoSimulator};
use rand::SeedableRng;

fn bench_pattern_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for kind in [PatternKind::LineArray, PatternKind::RandomRouting] {
        group.bench_with_input(
            BenchmarkId::new("sample", format!("{kind:?}")),
            &kind,
            |bench, &kind| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                bench.iter(|| patterns::sample_pattern(kind, &mut rng));
            },
        );
    }
    group.finish();
}

fn bench_rasterize(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let clip = patterns::sample_pattern(PatternKind::ContactArray, &mut rng);
    let mut group = c.benchmark_group("raster");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("contact-array-10nm", |bench| {
        bench.iter(|| raster::rasterize_clip(std::hint::black_box(&clip), 10));
    });
    group.finish();
}

fn bench_litho_label(c: &mut Criterion) {
    let sim = LithoSimulator::new(LithoConfig::default()).expect("valid config");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let clip = patterns::sample_pattern(PatternKind::LineTips, &mut rng);
    let mut group = c.benchmark_group("litho");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("label-clip-5-corners", |bench| {
        bench.iter(|| sim.analyze_clip(std::hint::black_box(&clip)));
    });
    group.finish();
}

/// End-to-end inference cost per clip: rasterised clip → DCT feature
/// tensor → CNN forward (the per-clip work inside
/// `HotspotDetector::predict_batch`).
fn bench_clip_scoring(c: &mut Criterion) {
    use hotspot_core::{model::CnnConfig, FeaturePipeline};

    let pipeline = FeaturePipeline::new(10, 12, 32).expect("valid pipeline parameters");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let clip = patterns::sample_pattern(PatternKind::LineArray, &mut rng);
    let mut net = CnnConfig {
        input_grid: pipeline.grid_dim(),
        input_channels: pipeline.coefficients(),
        ..CnnConfig::default()
    }
    .build();
    let mut group = c.benchmark_group("scoring");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("extract-and-forward-k32", |bench| {
        bench.iter(|| {
            let x = pipeline
                .extract(std::hint::black_box(&clip))
                .expect("suite clip fits the pipeline");
            net.forward(&x, false)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pattern_sampling,
    bench_rasterize,
    bench_litho_label,
    bench_clip_scoring
);
criterion_main!(benches);
