//! Criterion bench: end-to-end feature-tensor extraction per clip
//! (rasterise → block DCT → zig-zag truncation), across coefficient
//! counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotspot_core::FeaturePipeline;
use hotspot_datagen::{patterns, PatternKind};
use rand::SeedableRng;

fn bench_extract(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let clip = patterns::sample_pattern(PatternKind::RandomRouting, &mut rng);
    let mut group = c.benchmark_group("feature_tensor");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [8usize, 32, 100] {
        let pipeline = FeaturePipeline::new(10, 12, k).expect("valid pipeline");
        group.bench_with_input(BenchmarkId::new("extract", k), &k, |bench, _| {
            bench.iter(|| {
                pipeline
                    .extract(std::hint::black_box(&clip))
                    .expect("valid clip")
            });
        });
    }
    group.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    use hotspot_dct::{extract_feature_tensor, reconstruct_image, FeatureTensorSpec};
    use hotspot_geometry::raster;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let clip = patterns::sample_pattern(PatternKind::LineArray, &mut rng);
    let image = raster::rasterize_clip(&clip.normalized(), 10);
    let spec = FeatureTensorSpec::new(12, 32).expect("valid spec");
    let tensor = extract_feature_tensor(&image, &spec).expect("valid image");
    let mut group = c.benchmark_group("feature_tensor_reconstruct");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("reconstruct-k32", |bench| {
        bench.iter(|| {
            reconstruct_image(std::hint::black_box(&tensor), tensor.block_size())
                .expect("valid tensor")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_extract, bench_reconstruction);
criterion_main!(benches);
