//! Criterion bench: CNN forward and forward+backward cost per clip —
//! the numbers behind the paper's claim that the compressed feature tensor
//! "dramatically speeds up feed-forward and back-propagation" relative to
//! feeding the raw clip image.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotspot_core::model::CnnConfig;
use hotspot_nn::{loss, Parallelism, Tensor};

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_forward");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [8usize, 16, 32] {
        let cfg = CnnConfig {
            input_channels: k,
            ..CnnConfig::default()
        };
        let mut net = cfg.build();
        let x = Tensor::from_vec(cfg.input_shape(), vec![0.3; k * 144]);
        group.bench_with_input(BenchmarkId::new("k", k), &k, |bench, _| {
            bench.iter(|| net.forward(std::hint::black_box(&x), false));
        });
    }
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let cfg = CnnConfig {
        input_channels: 32,
        ..CnnConfig::default()
    };
    let mut net = cfg.build();
    let x = Tensor::from_vec(cfg.input_shape(), vec![0.3; 32 * 144]);
    let mut group = c.benchmark_group("cnn_train");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("train_step-k32", |bench| {
        bench.iter(|| {
            net.zero_grads();
            let logits = net.forward(std::hint::black_box(&x), true);
            let (_, grad) = loss::softmax_cross_entropy(&logits, &[0.0, 1.0]);
            net.backward(&grad);
            net.apply_gradients(1e-4);
        });
    });
    group.finish();
}

/// The comparison the paper motivates: the same architecture fed with the
/// raw 120×120 clip raster as a single channel instead of the 12×12×k
/// feature tensor. (Spatial dims collapse by the same two pools, so the
/// flatten width differs; the dominant cost is the 120×120 convolutions.)
fn bench_raw_image_input(c: &mut Criterion) {
    let cfg = CnnConfig {
        input_grid: 120,
        input_channels: 1,
        ..CnnConfig::default()
    };
    let mut net = cfg.build();
    let x = Tensor::from_vec(cfg.input_shape(), vec![0.3; 120 * 120]);
    let mut group = c.benchmark_group("cnn_raw_image");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("forward-raw-120px", |bench| {
        bench.iter(|| net.forward(std::hint::black_box(&x), false));
    });
    group.finish();
}

/// Batched inference through `Network::forward_batch` — the path
/// `Detector::predict_batch` rides — at one, two and all threads.
fn bench_forward_batch(c: &mut Criterion) {
    let cfg = CnnConfig {
        input_channels: 32,
        ..CnnConfig::default()
    };
    let net = cfg.build();
    let inputs: Vec<Tensor> = (0..64)
        .map(|i| Tensor::from_vec(cfg.input_shape(), vec![0.01 * i as f32; 32 * 144]))
        .collect();
    let all = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_counts = vec![1usize, 2, all];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut group = c.benchmark_group("cnn_forward_batch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &threads| {
                let par = Parallelism::fixed(threads).expect("thread counts are nonzero");
                bench.iter(|| net.forward_batch(std::hint::black_box(&inputs), par));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_train_step,
    bench_raw_image_input,
    bench_forward_batch
);
criterion_main!(benches);
