//! Criterion bench: separable (mat-mul) 2-D DCT vs the naive O(B⁴)
//! transform — the design choice that keeps feature extraction tractable
//! over full benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotspot_dct::Dct2d;
use hotspot_geometry::Grid;

fn block(b: usize) -> Grid<f32> {
    Grid::from_vec(
        b,
        b,
        (0..b * b).map(|v| ((v * 31 + 7) % 13) as f32).collect(),
    )
}

fn bench_dct(c: &mut Criterion) {
    let mut group = c.benchmark_group("dct2d");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for b in [10usize, 20, 50] {
        let plan = Dct2d::new(b).expect("valid size");
        let x = block(b);
        group.bench_with_input(BenchmarkId::new("separable", b), &b, |bench, _| {
            bench.iter(|| plan.forward(std::hint::black_box(&x)).expect("valid block"));
        });
        group.bench_with_input(BenchmarkId::new("naive", b), &b, |bench, _| {
            bench.iter(|| {
                plan.forward_naive(std::hint::black_box(&x))
                    .expect("valid block")
            });
        });
    }
    group.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let plan = Dct2d::new(10).expect("valid size");
    let coeffs = plan.forward(&block(10)).expect("valid block");
    let mut group = c.benchmark_group("dct2d_inverse");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("inverse-10", |bench| {
        bench.iter(|| {
            plan.inverse(std::hint::black_box(&coeffs))
                .expect("valid block")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dct, bench_inverse);
criterion_main!(benches);
