//! Pins the tentpole coalescing property with the process-wide GEMM-call
//! counter: two predict requests queued together are scored by ONE ragged
//! batched pass (same GEMM work as a single two-sample inference, strictly
//! less than scoring the jobs separately), and coalescing never changes a
//! score bit.
//!
//! Kept to a single `#[test]` so no parallel test in this binary can
//! perturb the global counter between the deltas.

mod common;

use hotspot_core::api::{ClipSpec, PredictRequest, PredictResponse};
use hotspot_core::HotspotDetector;
use hotspot_geometry::Clip;
use hotspot_nn::engine::BatchScorer;
use hotspot_nn::gemm::gemm_call_count;
use hotspot_server::{Engine, EngineConfig, ServeModel};

#[test]
fn concurrent_predicts_coalesce_into_shared_gemm_blocks() {
    let model_file = common::model_with_seed(11, 4);
    let engine = Engine::new(
        ServeModel::from_parts(&model_file, None).unwrap(),
        EngineConfig { queue_capacity: 8 },
    );

    let a = common::clip(0);
    let b = common::clip(1);
    let request = |id: &str, clip: &Clip| PredictRequest {
        id: id.into(),
        clips: vec![ClipSpec::from_clip(clip)],
        threshold: 0.5,
    };

    // Queue both jobs before any scoring happens, then drain one cycle.
    let rx_a = engine.enqueue_predict(&request("a", &a)).unwrap();
    let rx_b = engine.enqueue_predict(&request("b", &b)).unwrap();
    assert_eq!(engine.queue_len(), 2);
    let before = gemm_call_count();
    assert_eq!(engine.drain_once(), 2);
    let coalesced = gemm_call_count() - before;

    let reply_a = PredictResponse::parse(&rx_a.recv().unwrap()).unwrap();
    let reply_b = PredictResponse::parse(&rx_b.recv().unwrap()).unwrap();
    assert_eq!(reply_a.batched, 2, "job a must see its coalesced neighbour");
    assert_eq!(reply_b.batched, 2, "job b must see its coalesced neighbour");

    // Reference: one ragged two-sample inference does identical GEMM work.
    let pipeline = model_file.pipeline().unwrap();
    let net = model_file.network().unwrap();
    let in_shape = pipeline.input_shape();
    let mut flat = Vec::new();
    for clip in [&a, &b] {
        flat.extend_from_slice(pipeline.extract(clip).unwrap().as_slice());
    }
    let mut scorer = BatchScorer::new();
    let before = gemm_call_count();
    scorer.infer_ragged(&net, &flat, &in_shape, 2);
    let reference = gemm_call_count() - before;
    assert_eq!(
        coalesced, reference,
        "engine must score both jobs in one ragged batched pass"
    );

    // Scoring the same jobs in separate cycles costs strictly more GEMMs.
    let engine_solo = Engine::new(
        ServeModel::from_parts(&model_file, None).unwrap(),
        EngineConfig { queue_capacity: 8 },
    );
    let rx = engine_solo.enqueue_predict(&request("solo", &a)).unwrap();
    let before = gemm_call_count();
    assert_eq!(engine_solo.drain_once(), 1);
    let single = gemm_call_count() - before;
    rx.recv().unwrap();
    assert!(
        coalesced < 2 * single,
        "coalesced cycle used {coalesced} GEMM calls, two solo cycles would use {}",
        2 * single
    );

    // Coalescing never changes a score bit vs offline predict_batch.
    let detector = HotspotDetector::from_network(
        model_file.pipeline().unwrap(),
        model_file.network().unwrap(),
    );
    let offline = detector.predict_batch(&[a, b]).unwrap();
    assert_eq!(reply_a.scores.len(), 1);
    assert_eq!(reply_b.scores.len(), 1);
    assert_eq!(reply_a.scores[0].to_bits(), offline[0].to_bits());
    assert_eq!(reply_b.scores[0].to_bits(), offline[1].to_bits());
}
