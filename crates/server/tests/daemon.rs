//! End-to-end daemon test over a real Unix socket: concurrent client
//! threads stream predicts while a reload lands mid-stream, and every
//! reply must be bit-identical to the offline reference for whichever
//! model generation served it (identified by the reply's provenance CRC).

mod common;

use hotspot_core::api::{
    ClipSpec, ErrorReply, Json, ModelProvenance, PredictRequest, PredictResponse, ReloadRequest,
    ReloadResponse, Request, StatusResponse,
};
use hotspot_core::HotspotDetector;
use hotspot_geometry::{Clip, Rect};
use hotspot_server::{client_roundtrip, ClientConn, ServeModel, Server, ServerConfig};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const PREDICTS_PER_PHASE: usize = 5;

fn wait_for_socket(path: &std::path::Path) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while ClientConn::connect(path).is_err() {
        assert!(Instant::now() < deadline, "daemon never came up");
        thread::sleep(Duration::from_millis(5));
    }
}

fn predict_line(id: String, clips: &[Clip]) -> String {
    Request::Predict(PredictRequest {
        id,
        clips: clips.iter().map(ClipSpec::from_clip).collect(),
        threshold: 0.5,
    })
    .render()
}

#[test]
fn concurrent_clients_stay_bit_identical_across_midstream_reload() {
    let model_a = common::model_with_seed(21, 4);
    let model_b = common::model_with_seed(22, 4);
    let (crc_a, crc_b) = (model_a.crc(), model_b.crc());
    assert_ne!(crc_a, crc_b, "fixture models must be distinguishable");
    let path_a = common::write_temp("daemon-a.hsmodel", &model_a.to_bytes());
    let path_b = common::write_temp("daemon-b.hsmodel", &model_b.to_bytes());

    let socket = std::env::temp_dir().join(format!("hotspot-daemon-{}.sock", std::process::id()));
    let server = Server::bind(
        ServeModel::load(path_a.to_str().unwrap(), None).unwrap(),
        &ServerConfig::new(&socket),
    )
    .unwrap();
    let daemon = thread::spawn(move || server.run().unwrap());
    wait_for_socket(&socket);

    // Four clients stream predicts; between the phases the coordinator
    // lands a reload, so phase-1 replies may come from either generation
    // while phase-2 replies must all come from model B.
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let socket = socket.clone();
            let barrier = barrier.clone();
            thread::spawn(move || {
                let mut conn = ClientConn::connect(&socket).unwrap();
                let mut run_phase = |phase: usize| {
                    (0..PREDICTS_PER_PHASE)
                        .map(|i| {
                            let clips = common::clips((t * 100 + phase * 50 + i) as i64, 1 + i % 3);
                            let line = predict_line(format!("c{t}-p{phase}-{i}"), &clips);
                            (clips, conn.request(&line).unwrap())
                        })
                        .collect::<Vec<_>>()
                };
                let phase1 = run_phase(1);
                barrier.wait(); // coordinator reloads...
                barrier.wait(); // ...and acknowledges
                let phase2 = run_phase(2);
                (phase1, phase2)
            })
        })
        .collect();

    barrier.wait();
    let reload = Request::Reload(ReloadRequest {
        id: "swap".into(),
        model_path: path_b.to_str().unwrap().into(),
        cascade_path: None,
    })
    .render();
    let ack = ReloadResponse::parse(&client_roundtrip(&socket, &reload).unwrap()).unwrap();
    assert_eq!(ack.model.model_crc, crc_b);
    barrier.wait();

    let detector_a =
        HotspotDetector::from_network(model_a.pipeline().unwrap(), model_a.network().unwrap());
    let detector_b =
        HotspotDetector::from_network(model_b.pipeline().unwrap(), model_b.network().unwrap());
    let check = |clips: &[Clip], reply: &str, expect: Option<u32>| {
        let r = PredictResponse::parse(reply).unwrap();
        let reference = match r.model.model_crc {
            crc if crc == crc_a => &detector_a,
            crc if crc == crc_b => &detector_b,
            crc => panic!("reply served by unknown model {crc:#010x}"),
        };
        if let Some(expected_crc) = expect {
            assert_eq!(r.model.model_crc, expected_crc);
        }
        let offline = reference.predict_batch(clips).unwrap();
        assert_eq!(r.scores.len(), offline.len());
        for (served, reference_score) in r.scores.iter().zip(&offline) {
            assert_eq!(
                served.to_bits(),
                reference_score.to_bits(),
                "daemon score differs from offline predict_batch"
            );
        }
        for (hot, score) in r.hotspots.iter().zip(&r.scores) {
            assert_eq!(*hot, *score > r.threshold);
        }
    };
    let mut total_clips = 0;
    for client in clients {
        let (phase1, phase2) = client.join().unwrap();
        for (clips, reply) in &phase1 {
            total_clips += clips.len();
            check(clips, reply, None);
        }
        // Reload was acknowledged before phase 2 began: generation B only.
        for (clips, reply) in &phase2 {
            total_clips += clips.len();
            check(clips, reply, Some(crc_b));
        }
    }

    // Scan through the daemon: report carries the serving provenance.
    let mut layout = Clip::new(Rect::new(0, 0, 2400, 2400).unwrap());
    for i in 0..8 {
        layout.push(Rect::new(120 + 280 * i, 200, 220 + 280 * i, 2200).unwrap());
    }
    let scan = Request::Scan(hotspot_core::api::ScanRequest {
        id: "sweep".into(),
        layout: ClipSpec::from_clip(&layout),
        stride_nm: 600,
        window_nm: 1200,
        threshold: 0.5,
        include_windows: false,
    })
    .render();
    let reply = client_roundtrip(&socket, &scan).unwrap();
    let v = Json::parse(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let report = v.get("report").expect("scan reply carries the report");
    let provenance =
        ModelProvenance::from_json(report.get("provenance").expect("report has provenance"))
            .unwrap();
    assert_eq!(provenance.model_crc, crc_b);
    assert_eq!(report.get("windows"), Some(&Json::Null));

    // Malformed JSON: structured parse error, no id recoverable.
    let reply = client_roundtrip(&socket, "{definitely not json").unwrap();
    let err = ErrorReply::parse(&reply).unwrap();
    assert_eq!(err.error.kind, hotspot_core::api::ErrorKind::Parse);
    assert_eq!(err.id, None);

    // Shape-mismatched reload: structured model error, old model keeps
    // serving.
    let bad = common::write_temp(
        "daemon-k8.hsmodel",
        &common::model_with_seed(23, 8).to_bytes(),
    );
    let reload_bad = Request::Reload(ReloadRequest {
        id: "bad".into(),
        model_path: bad.to_str().unwrap().into(),
        cascade_path: None,
    })
    .render();
    let reply = client_roundtrip(&socket, &reload_bad).unwrap();
    let err = ErrorReply::parse(&reply).unwrap();
    assert_eq!(err.error.kind, hotspot_core::api::ErrorKind::Model);
    assert_eq!(err.id.as_deref(), Some("bad"));

    // Status reflects everything this test did.
    let status_line = Request::Status { id: "st".into() }.render();
    let status = StatusResponse::parse(&client_roundtrip(&socket, &status_line).unwrap()).unwrap();
    assert_eq!(status.model.model_crc, crc_b);
    assert_eq!(
        status.counters.predicts,
        (CLIENTS * 2 * PREDICTS_PER_PHASE) as u64
    );
    assert_eq!(status.counters.clips, total_clips as u64);
    assert_eq!(status.counters.scans, 1);
    assert_eq!(status.counters.reloads, 1);
    assert!(status.counters.errors >= 2);
    assert!(status.counters.batches >= 1);
    assert!(status.counters.max_batch >= 1);
    assert!(status.uptime_s >= 0.0);

    // Graceful shutdown: acknowledged, daemon exits, socket removed.
    let shutdown = Request::Shutdown { id: "bye".into() }.render();
    let reply = client_roundtrip(&socket, &shutdown).unwrap();
    assert!(reply.contains("\"ok\": true"), "got: {reply}");
    daemon.join().unwrap();
    assert!(!socket.exists(), "socket file must be removed on shutdown");

    for path in [path_a, path_b, bad] {
        std::fs::remove_file(path).unwrap();
    }
}
