//! Engine-level protocol contracts that need no socket: bounded-queue
//! backpressure, shutdown draining, structured data errors, and reload
//! validation.

mod common;

use hotspot_core::api::{
    ClipSpec, ErrorKind, ErrorReply, PredictRequest, ReloadRequest, ReloadResponse, Request,
};
use hotspot_server::{Engine, EngineConfig, ServeModel};
use std::sync::Arc;
use std::thread;

fn engine(seed: u64, queue_capacity: usize) -> Arc<Engine> {
    let model = ServeModel::from_parts(&common::model_with_seed(seed, 4), None).unwrap();
    Arc::new(Engine::new(model, EngineConfig { queue_capacity }))
}

fn predict_line(id: &str, variant: i64) -> String {
    Request::Predict(PredictRequest {
        id: id.into(),
        clips: vec![ClipSpec::from_clip(&common::clip(variant))],
        threshold: 0.5,
    })
    .render()
}

fn kind_of(reply: &str) -> ErrorKind {
    ErrorReply::parse(reply)
        .unwrap_or_else(|e| panic!("expected an error reply, got {reply}: {e}"))
        .error
        .kind
}

#[test]
fn full_queue_refuses_with_busy_and_counts_the_rejection() {
    let engine = engine(3, 2);
    let request = PredictRequest {
        id: "fill".into(),
        clips: vec![ClipSpec::from_clip(&common::clip(0))],
        threshold: 0.5,
    };
    // Fill the queue without a batcher running.
    let _rx1 = engine.enqueue_predict(&request).unwrap();
    let _rx2 = engine.enqueue_predict(&request).unwrap();
    assert_eq!(engine.queue_len(), engine.capacity());

    let (reply, _) = engine.handle_line(&predict_line("overflow", 1));
    assert_eq!(kind_of(&reply), ErrorKind::Busy);
    let c = engine.counters();
    assert_eq!(c.rejected_busy, 1);
    assert_eq!(c.errors, 1);
    assert_eq!(c.predicts, 0, "refused requests must not score");

    // Backpressure is transient: draining frees the slots.
    assert_eq!(engine.drain_once(), 2);
    engine.enqueue_predict(&request).unwrap();
}

#[test]
fn shutdown_drains_every_accepted_job_then_refuses_new_work() {
    let engine = engine(4, 16);
    let receivers: Vec<_> = (0..5)
        .map(|i| {
            engine
                .enqueue_predict(&PredictRequest {
                    id: format!("job-{i}"),
                    clips: vec![ClipSpec::from_clip(&common::clip(i))],
                    threshold: 0.5,
                })
                .unwrap()
        })
        .collect();

    // Drain begins before the batcher ever ran: accepted jobs must still
    // be answered, then the batcher must exit on its own.
    engine.begin_shutdown();
    let batcher = {
        let engine = engine.clone();
        thread::spawn(move || engine.run_batcher())
    };
    engine.wait_drained();
    for rx in receivers {
        let reply = rx.recv().expect("accepted job dropped during drain");
        assert!(reply.contains("\"ok\": true"), "unexpected reply: {reply}");
    }
    batcher.join().unwrap();

    let (reply, _) = engine.handle_line(&predict_line("late", 9));
    assert_eq!(kind_of(&reply), ErrorKind::Shutdown);
    assert_eq!(engine.counters().predicts, 5);
}

#[test]
fn unusable_predict_payloads_are_structured_data_errors() {
    let engine = engine(5, 4);
    // No clips at all: the wire parser already refuses this shape, and
    // the engine-level guard catches direct submissions too.
    let (reply, _) =
        engine.handle_line("{\"v\": 1, \"id\": \"e\", \"op\": \"predict\", \"clips\": []}");
    assert_eq!(kind_of(&reply), ErrorKind::Parse);
    let direct = engine
        .enqueue_predict(&PredictRequest {
            id: "e".into(),
            clips: Vec::new(),
            threshold: 0.5,
        })
        .unwrap_err();
    assert_eq!(direct.kind, ErrorKind::Data);
    // A window the pipeline cannot divide into its block grid
    // (1000 nm at 10 nm/px is 100 px, not divisible by 12).
    let (reply, _) = engine.handle_line(
        "{\"v\": 1, \"id\": \"e\", \"op\": \"predict\", \
         \"clips\": [{\"window\": [0, 0, 1000, 1000], \"rects\": []}]}",
    );
    assert_eq!(kind_of(&reply), ErrorKind::Data);
    // A degenerate window rectangle.
    let (reply, _) = engine.handle_line(
        "{\"v\": 1, \"id\": \"e\", \"op\": \"predict\", \
         \"clips\": [{\"window\": [0, 0, 0, 0], \"rects\": []}]}",
    );
    assert_eq!(kind_of(&reply), ErrorKind::Data);
    assert_eq!(engine.counters().errors, 3);
}

#[test]
fn reload_rejects_shape_mismatch_and_keeps_serving_the_old_model() {
    let engine = engine(1, 4);
    let before = engine.current().provenance();

    // Same format, different feature geometry (k = 8 vs the serving 4).
    let mismatched = common::write_temp(
        "reload-k8.hsmodel",
        &common::model_with_seed(7, 8).to_bytes(),
    );
    let line = Request::Reload(ReloadRequest {
        id: "r1".into(),
        model_path: mismatched.to_str().unwrap().into(),
        cascade_path: None,
    })
    .render();
    let (reply, _) = engine.handle_line(&line);
    assert_eq!(kind_of(&reply), ErrorKind::Model);
    assert!(reply.contains("geometry mismatch"), "got: {reply}");
    assert_eq!(engine.current().provenance(), before);

    // An unreadable path is the same structured error, never a panic.
    let line = Request::Reload(ReloadRequest {
        id: "r2".into(),
        model_path: "/nonexistent/model.hsmodel".into(),
        cascade_path: None,
    })
    .render();
    let (reply, _) = engine.handle_line(&line);
    assert_eq!(kind_of(&reply), ErrorKind::Model);
    assert_eq!(engine.counters().reloads, 0);

    // A well-shaped successor swaps in.
    let good_model = common::model_with_seed(2, 4);
    let good = common::write_temp("reload-good.hsmodel", &good_model.to_bytes());
    let line = Request::Reload(ReloadRequest {
        id: "r3".into(),
        model_path: good.to_str().unwrap().into(),
        cascade_path: None,
    })
    .render();
    let (reply, _) = engine.handle_line(&line);
    let ack = ReloadResponse::parse(&reply).unwrap();
    assert_eq!(ack.model.model_crc, good_model.crc());
    assert_eq!(engine.current().provenance().model_crc, good_model.crc());
    assert_eq!(engine.counters().reloads, 1);

    std::fs::remove_file(mismatched).unwrap();
    std::fs::remove_file(good).unwrap();
}
