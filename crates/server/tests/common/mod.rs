//! Shared fixtures for the server integration tests: tiny-but-real model
//! files (the paper architecture at k = 4 over a 12×12 grid) and
//! deterministic clip sets sized for the default 1200 nm window.
//!
//! Each integration-test target compiles this module independently, so
//! any one target uses only a subset of the helpers.
#![allow(dead_code)]

use hotspot_core::{CnnConfig, ModelFile};
use hotspot_geometry::{Clip, Rect};
use hotspot_nn::serialize::ParameterBlob;
use std::path::PathBuf;

/// A valid model file with freshly initialised weights; different seeds
/// give different parameter blobs, hence different CRCs, at identical
/// feature geometry.
pub fn model_with_seed(seed: u64, k: usize) -> ModelFile {
    let cnn = CnnConfig {
        input_grid: 12,
        input_channels: k,
        seed,
        ..CnnConfig::default()
    };
    let mut net = cnn.build();
    ModelFile {
        resolution_nm: 10,
        grid: 12,
        k,
        blob: ParameterBlob::from_network(&mut net),
    }
}

/// Writes `bytes` to a unique temp path (per test name) and returns it.
pub fn write_temp(name: &str, bytes: &[u8]) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("hotspot-server-test-{}-{name}", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    path
}

/// A deterministic 1200 nm clip whose content varies with `variant`.
pub fn clip(variant: i64) -> Clip {
    let mut c = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
    let pitch = 120 + 10 * (variant % 7);
    let mut x = 40 + 7 * (variant % 5);
    while x + 60 < 1200 {
        c.push(Rect::new(x, 100 + (variant % 3) * 40, x + 60, 1100).unwrap());
        x += pitch;
    }
    c.push(Rect::new(100, 560 + (variant % 4) * 20, 1100, 640).unwrap());
    c
}

/// `count` distinct clips starting at `variant` offset `base`.
pub fn clips(base: i64, count: usize) -> Vec<Clip> {
    (0..count as i64).map(|i| clip(base + i)).collect()
}
