//! Scan-as-a-service daemon.
//!
//! Offline, the suite scores clips and scans layouts through one-shot CLI
//! invocations that pay model load and thread-pool spin-up per call. This
//! crate keeps a trained detector resident and serves it over a **Unix
//! domain socket** with a newline-delimited JSON protocol
//! ([`hotspot_core::api`], schema `"v": 1`):
//!
//! - `predict` — score a batch of clips; concurrent requests are coalesced
//!   into shared GEMM blocks by a bounded micro-batching queue,
//! - `scan` — run a full sliding-window layout scan and return the same
//!   report object `hotspot scan --report` writes,
//! - `status` — serving counters plus the live model's provenance,
//! - `reload` — swap in a new model file with zero downtime: requests
//!   already accepted finish on the weights they were accepted under
//!   (snapshotted via [`std::sync::Arc`]), later requests see the new ones,
//! - `shutdown` — stop accepting work, drain the queue, exit.
//!
//! The split is [`engine::Engine`] (model state, micro-batch queue, request
//! dispatch — no I/O, directly testable) and [`daemon::Server`] (socket
//! accept loop and per-connection threads). Responses to `predict` are
//! bit-identical to offline [`HotspotDetector::predict_batch`]: the batcher
//! replicates its extraction → blocked batched inference → softmax
//! sequence, and batched inference is composition-independent, so
//! coalescing never changes a score.
//!
//! [`HotspotDetector::predict_batch`]: hotspot_core::HotspotDetector::predict_batch

pub mod daemon;
pub mod engine;

use hotspot_core::api::ApiError;
use hotspot_core::CoreError;
use std::error::Error;
use std::fmt;

pub use daemon::{client_roundtrip, ClientConn, Server, ServerConfig};
pub use engine::{Engine, EngineConfig, ServeModel};

/// Daemon-level failures (socket setup, model bootstrap).
///
/// Per-request failures never surface here — they become structured
/// [`hotspot_core::api::ErrorReply`] lines on the wire instead.
#[derive(Debug)]
pub enum ServerError {
    /// Socket or file-system failure.
    Io(std::io::Error),
    /// Detector-level failure outside request handling.
    Core(CoreError),
    /// Model bootstrap failure (initial load/validation).
    Api(ApiError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::Core(e) => write!(f, "core error: {e}"),
            ServerError::Api(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}

impl From<ApiError> for ServerError {
    fn from(e: ApiError) -> Self {
        ServerError::Api(e)
    }
}
