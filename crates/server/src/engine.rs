//! Serving engine: model state, micro-batch queue, request dispatch.
//!
//! The engine is deliberately I/O-free — it consumes request *lines* and
//! produces response *lines* ([`Engine::handle_line`]), so every protocol
//! path is testable without a socket. [`daemon`](crate::daemon) adds the
//! socket plumbing on top.
//!
//! # Micro-batching
//!
//! `predict` requests do not score inline. The connection thread extracts
//! the feature tensors (CPU-parallel across connections), snapshots the
//! serving model, and pushes one [`PredictJob`] onto a **bounded** queue;
//! a single batcher thread drains *everything* queued at once, groups the
//! jobs by model snapshot, concatenates their features and scores each
//! group through one ragged batched inference call
//! ([`BatchScorer::infer_ragged`]). Two clients that arrive within one
//! drain cycle therefore share GEMM blocks. Batched inference is
//! composition-independent (pinned in `hotspot-nn`), so coalescing never
//! changes a score: every reply is bit-identical to offline
//! [`predict_batch`](hotspot_core::HotspotDetector::predict_batch).
//!
//! When the queue is full the request is refused immediately with a
//! structured `busy` reply — explicit backpressure instead of unbounded
//! memory growth; the client retries.
//!
//! # Hot reload
//!
//! The live model is an [`Arc<ServeModel>`] behind an [`RwLock`]. Requests
//! snapshot the `Arc` once at acceptance; `reload` validates the successor
//! against the serving geometry, then swaps the `Arc`. In-flight jobs keep
//! scoring on the snapshot they were accepted under — the batcher's
//! grouping by snapshot identity keeps mixed-generation queues correct —
//! while every later request sees the new weights. No lock is held during
//! scoring.

use hotspot_core::api::{
    ApiError, ErrorKind, ErrorReply, ModelProvenance, PredictRequest, PredictResponse,
    ReloadRequest, ReloadResponse, Request, ScanRequest, ScanResponse, ServeCounters,
    ShutdownResponse, StatusResponse,
};
use hotspot_core::{CascadePrefilter, HotspotDetector, ModelFile, Parallelism, ScanConfig};
use hotspot_nn::engine::BatchScorer;
use hotspot_nn::loss;
use std::collections::VecDeque;
use std::fs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// Default bound of the micro-batching queue (jobs, not clips).
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// One immutable model generation: detector, optional cascade prefilter,
/// and the provenance that identifies it in responses.
///
/// A `ServeModel` never changes after construction; the engine swaps whole
/// generations behind an [`Arc`].
pub struct ServeModel {
    detector: HotspotDetector,
    cascade: Option<CascadePrefilter>,
    provenance: ModelProvenance,
}

impl ServeModel {
    /// Loads a model (and optionally a cascade prefilter) from disk.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Model`] for unreadable or undecodable files — the
    /// same structured error a `reload` request reports, so the daemon
    /// never panics on a bad model.
    pub fn load(model_path: &str, cascade_path: Option<&str>) -> Result<Self, ApiError> {
        let bytes = fs::read(model_path).map_err(|e| {
            ApiError::new(
                ErrorKind::Model,
                format!("cannot read model file '{model_path}': {e}"),
            )
        })?;
        let model = ModelFile::from_bytes(&bytes)
            .map_err(|e| ApiError::new(ErrorKind::Model, e.to_string()))?;
        let cascade = match cascade_path {
            None => None,
            Some(path) => {
                let bytes = fs::read(path).map_err(|e| {
                    ApiError::new(
                        ErrorKind::Model,
                        format!("cannot read cascade file '{path}': {e}"),
                    )
                })?;
                Some(
                    CascadePrefilter::from_bytes(&bytes)
                        .map_err(|e| ApiError::new(ErrorKind::Model, e.to_string()))?,
                )
            }
        };
        ServeModel::from_parts(&model, cascade)
    }

    /// Builds a serving generation from an in-memory model file.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Model`] when the header geometry is impossible or the
    /// parameter blob does not fit the declared architecture.
    pub fn from_parts(
        model: &ModelFile,
        cascade: Option<CascadePrefilter>,
    ) -> Result<Self, ApiError> {
        let pipeline = model
            .pipeline()
            .map_err(|e| ApiError::new(ErrorKind::Model, e.to_string()))?;
        let net = model
            .network()
            .map_err(|e| ApiError::new(ErrorKind::Model, e.to_string()))?;
        let provenance = model.provenance(cascade.as_ref().map(CascadePrefilter::crc));
        Ok(ServeModel {
            detector: HotspotDetector::from_network(pipeline, net),
            cascade,
            provenance,
        })
    }

    /// The detector serving this generation.
    pub fn detector(&self) -> &HotspotDetector {
        &self.detector
    }

    /// The cascade prefilter applied to `scan` requests, if any.
    pub fn cascade(&self) -> Option<&CascadePrefilter> {
        self.cascade.as_ref()
    }

    /// Identity of the served weights (echoed in every response).
    pub fn provenance(&self) -> ModelProvenance {
        self.provenance
    }

    /// Sets the thread budget for `scan` requests.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.detector.set_parallelism(parallelism);
    }

    /// Checks that `next` can replace this generation without disturbing
    /// clients: the feature geometry (raster resolution, block grid,
    /// coefficient count) must match, because clients size their clips to
    /// the serving pipeline.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Model`] describing both geometries on mismatch.
    pub fn validate_successor(&self, next: &ServeModel) -> Result<(), ApiError> {
        let a = self.detector.pipeline();
        let b = next.detector.pipeline();
        let geometry =
            |p: &hotspot_core::FeaturePipeline| (p.resolution_nm(), p.grid_dim(), p.coefficients());
        if geometry(a) != geometry(b) {
            return Err(ApiError::new(
                ErrorKind::Model,
                format!(
                    "geometry mismatch: serving (resolution_nm {}, grid {}, k {}) \
                     but reload has (resolution_nm {}, grid {}, k {})",
                    a.resolution_nm(),
                    a.grid_dim(),
                    a.coefficients(),
                    b.resolution_nm(),
                    b.grid_dim(),
                    b.coefficients()
                ),
            ));
        }
        Ok(())
    }
}

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Micro-batch queue bound; a full queue refuses with `busy`.
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }
}

/// What the connection loop should do after writing a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// The daemon is shutting down; close the connection.
    Shutdown,
}

/// One queued predict request: features already extracted, model already
/// snapshotted, reply channel back to the waiting connection thread.
struct PredictJob {
    id: String,
    threshold: f32,
    /// `count * feat_len` floats, clip-major.
    features: Vec<f32>,
    count: usize,
    model: Arc<ServeModel>,
    reply: mpsc::Sender<String>,
}

struct QueueState {
    jobs: VecDeque<PredictJob>,
    /// Jobs drained by the batcher but not yet replied to; `shutdown`
    /// completes only when the queue is empty *and* this is zero.
    in_flight: usize,
    shutdown: bool,
}

/// The serving engine: live model, bounded micro-batch queue, counters.
///
/// Thread-safe; the daemon shares one `Arc<Engine>` between the accept
/// loop, every connection thread and the batcher thread.
pub struct Engine {
    model: RwLock<Arc<ServeModel>>,
    queue: Mutex<QueueState>,
    /// Wakes the batcher (work arrived or shutdown began).
    work: Condvar,
    /// Wakes shutdown waiters (queue empty and nothing in flight).
    drained: Condvar,
    capacity: usize,
    start: Instant,
    requests: AtomicU64,
    predicts: AtomicU64,
    clips: AtomicU64,
    scans: AtomicU64,
    reloads: AtomicU64,
    errors: AtomicU64,
    rejected_busy: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
}

impl Engine {
    /// Wraps a loaded model into a serving engine.
    pub fn new(model: ServeModel, config: EngineConfig) -> Engine {
        Engine {
            model: RwLock::new(Arc::new(model)),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            drained: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            start: Instant::now(),
            requests: AtomicU64::new(0),
            predicts: AtomicU64::new(0),
            clips: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    /// The model generation new requests are accepted under.
    pub fn current(&self) -> Arc<ServeModel> {
        match self.model.read() {
            Ok(guard) => guard.clone(),
            // Writers only assign a fresh Arc; a poisoned lock means a
            // daemon thread panicked mid-swap and serving cannot continue.
            Err(_) => panic!("model lock poisoned by a panicked daemon thread"),
        }
    }

    /// Locks the micro-batch queue. A poisoned lock means another daemon
    /// thread panicked while mutating the queue, so its contents (and the
    /// in-flight accounting the drain protocol depends on) cannot be
    /// trusted — abort rather than serve corrupt state.
    fn queue_state(&self) -> MutexGuard<'_, QueueState> {
        match self.queue.lock() {
            Ok(guard) => guard,
            Err(_) => panic!("queue mutex poisoned by a panicked daemon thread"),
        }
    }

    /// Queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting for the batcher.
    pub fn queue_len(&self) -> usize {
        self.queue_state().jobs.len()
    }

    /// Whether shutdown has begun (new predicts are refused).
    pub fn is_shutdown(&self) -> bool {
        self.queue_state().shutdown
    }

    /// Snapshot of the serving counters.
    pub fn counters(&self) -> ServeCounters {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServeCounters {
            requests: get(&self.requests),
            predicts: get(&self.predicts),
            clips: get(&self.clips),
            scans: get(&self.scans),
            reloads: get(&self.reloads),
            errors: get(&self.errors),
            rejected_busy: get(&self.rejected_busy),
            batches: get(&self.batches),
            max_batch: get(&self.max_batch),
        }
    }

    /// Handles one request line and returns the reply line plus what the
    /// connection should do next. Never panics on client input: every
    /// failure becomes a structured [`ErrorReply`] line.
    pub fn handle_line(&self, line: &str) -> (String, Control) {
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err((id, e)) => return (self.error_reply(id, e), Control::Continue),
        };
        self.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Predict(req) => (self.predict(&req), Control::Continue),
            Request::Scan(req) => (self.scan(&req), Control::Continue),
            Request::Status { id } => (self.status(id), Control::Continue),
            Request::Reload(req) => (self.reload(&req), Control::Continue),
            Request::Shutdown { id } => {
                self.begin_shutdown();
                self.wait_drained();
                (ShutdownResponse { id }.render(), Control::Shutdown)
            }
        }
    }

    /// Extracts features for a predict request and enqueues it; the reply
    /// line arrives on the returned channel once the batcher scores it.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Data`] for unusable clips, [`ErrorKind::Busy`] when
    /// the queue is full, [`ErrorKind::Shutdown`] once draining began.
    pub fn enqueue_predict(
        &self,
        req: &PredictRequest,
    ) -> Result<mpsc::Receiver<String>, ApiError> {
        if req.clips.is_empty() {
            return Err(ApiError::new(
                ErrorKind::Data,
                "predict requires at least one clip",
            ));
        }
        let model = self.current();
        let pipeline = model.detector().pipeline();
        let feat_len: usize = pipeline.input_shape().iter().product();
        let mut features = Vec::with_capacity(req.clips.len() * feat_len);
        for (i, spec) in req.clips.iter().enumerate() {
            let clip = spec
                .to_clip()
                .map_err(|e| ApiError::new(ErrorKind::Data, format!("clip {i}: {e}")))?;
            let tensor = pipeline
                .extract(&clip)
                .map_err(|e| ApiError::new(ErrorKind::Data, format!("clip {i}: {e}")))?;
            features.extend_from_slice(tensor.as_slice());
        }
        let (tx, rx) = mpsc::channel();
        let mut state = self.queue_state();
        if state.shutdown {
            return Err(ApiError::new(
                ErrorKind::Shutdown,
                "daemon is draining for shutdown",
            ));
        }
        if state.jobs.len() >= self.capacity {
            return Err(ApiError::new(
                ErrorKind::Busy,
                format!(
                    "micro-batch queue is full ({} jobs pending); retry",
                    state.jobs.len()
                ),
            ));
        }
        state.jobs.push_back(PredictJob {
            id: req.id.clone(),
            threshold: req.threshold,
            features,
            count: req.clips.len(),
            model,
            reply: tx,
        });
        drop(state);
        self.work.notify_one();
        Ok(rx)
    }

    fn predict(&self, req: &PredictRequest) -> String {
        match self.enqueue_predict(req) {
            Ok(rx) => match rx.recv() {
                Ok(line) => line,
                Err(_) => self.error_reply(
                    Some(req.id.clone()),
                    ApiError::new(ErrorKind::Internal, "batcher unavailable"),
                ),
            },
            Err(e) => self.error_reply(Some(req.id.clone()), e),
        }
    }

    fn scan(&self, req: &ScanRequest) -> String {
        let fail = |e: ApiError| self.error_reply(Some(req.id.clone()), e);
        let data = |msg: String| ApiError::new(ErrorKind::Data, msg);
        let layout = match req.layout.to_clip() {
            Ok(c) => c,
            Err(e) => return fail(data(format!("layout: {e}"))),
        };
        let model = self.current();
        let mut config = match ScanConfig::new(req.stride_nm)
            .and_then(|c| c.with_window_nm(req.window_nm))
            .and_then(|c| c.with_threshold(req.threshold))
        {
            Ok(c) => c.with_provenance(model.provenance()),
            Err(e) => return fail(data(e.to_string())),
        };
        if let Some(cascade) = model.cascade() {
            config = config.with_cascade(cascade.clone());
        }
        match model.detector().scan(&layout, &config) {
            Ok(report) => {
                self.scans.fetch_add(1, Ordering::Relaxed);
                ScanResponse {
                    id: req.id.clone(),
                    report,
                }
                .render(req.include_windows)
            }
            Err(e) => fail(data(e.to_string())),
        }
    }

    fn status(&self, id: String) -> String {
        StatusResponse {
            id,
            model: self.current().provenance(),
            uptime_s: self.start.elapsed().as_secs_f64(),
            counters: self.counters(),
        }
        .render()
    }

    fn reload(&self, req: &ReloadRequest) -> String {
        let mut next = match ServeModel::load(&req.model_path, req.cascade_path.as_deref()) {
            Ok(m) => m,
            Err(e) => return self.error_reply(Some(req.id.clone()), e),
        };
        let current = self.current();
        if let Err(e) = current.validate_successor(&next) {
            return self.error_reply(Some(req.id.clone()), e);
        }
        next.set_parallelism(current.detector().parallelism());
        let provenance = next.provenance();
        match self.model.write() {
            Ok(mut guard) => *guard = Arc::new(next),
            Err(_) => panic!("model lock poisoned by a panicked daemon thread"),
        }
        self.reloads.fetch_add(1, Ordering::Relaxed);
        ReloadResponse {
            id: req.id.clone(),
            model: provenance,
        }
        .render()
    }

    fn error_reply(&self, id: Option<String>, e: ApiError) -> String {
        self.errors.fetch_add(1, Ordering::Relaxed);
        if e.kind == ErrorKind::Busy {
            self.rejected_busy.fetch_add(1, Ordering::Relaxed);
        }
        ErrorReply { id, error: e }.render()
    }

    /// Begins draining: new predicts are refused, the batcher finishes the
    /// queue and exits.
    pub fn begin_shutdown(&self) {
        let mut state = self.queue_state();
        state.shutdown = true;
        drop(state);
        self.work.notify_all();
        self.drained.notify_all();
    }

    /// Blocks until every accepted predict job has been replied to.
    pub fn wait_drained(&self) {
        let mut state = self.queue_state();
        while !state.jobs.is_empty() || state.in_flight > 0 {
            state = match self.drained.wait(state) {
                Ok(state) => state,
                Err(_) => panic!("queue mutex poisoned by a panicked daemon thread"),
            };
        }
    }

    /// The batcher loop: drain everything queued, score it coalesced,
    /// repeat; exits once shutdown began *and* the queue is empty.
    pub fn run_batcher(&self) {
        let mut scorer = BatchScorer::new();
        loop {
            let jobs = {
                let mut state = self.queue_state();
                loop {
                    if !state.jobs.is_empty() {
                        break;
                    }
                    if state.shutdown {
                        drop(state);
                        self.drained.notify_all();
                        return;
                    }
                    state = match self.work.wait(state) {
                        Ok(state) => state,
                        Err(_) => panic!("queue mutex poisoned by a panicked daemon thread"),
                    };
                }
                let jobs: Vec<PredictJob> = state.jobs.drain(..).collect();
                state.in_flight = jobs.len();
                jobs
            };
            self.process(&mut scorer, jobs);
        }
    }

    /// Processes whatever is queued right now (one drain cycle) without
    /// blocking; returns the number of jobs scored. Lets tests drive the
    /// batcher deterministically — queue N jobs, drain once, observe one
    /// coalesced scoring pass.
    pub fn drain_once(&self) -> usize {
        let jobs = {
            let mut state = self.queue_state();
            if state.jobs.is_empty() {
                return 0;
            }
            let jobs: Vec<PredictJob> = state.jobs.drain(..).collect();
            state.in_flight = jobs.len();
            jobs
        };
        let n = jobs.len();
        let mut scorer = BatchScorer::new();
        self.process(&mut scorer, jobs);
        n
    }

    /// Scores one drained job set: group by model snapshot (reload can
    /// leave mixed generations in the queue), coalesce each group into one
    /// ragged batched inference, reply per job.
    fn process(&self, scorer: &mut BatchScorer, jobs: Vec<PredictJob>) {
        let mut groups: Vec<(Arc<ServeModel>, Vec<PredictJob>)> = Vec::new();
        for job in jobs {
            match groups
                .iter_mut()
                .find(|(model, _)| Arc::ptr_eq(model, &job.model))
            {
                Some((_, group)) => group.push(job),
                None => {
                    let model = job.model.clone();
                    groups.push((model, vec![job]));
                }
            }
        }
        for (model, group) in groups {
            self.score_group(scorer, &model, group);
        }
        let mut state = self.queue_state();
        state.in_flight = 0;
        drop(state);
        self.drained.notify_all();
    }

    /// One coalesced scoring pass: identical arithmetic to
    /// [`HotspotDetector::predict_batch`] (extract → blocked batched
    /// forward → softmax), so replies are bit-identical to offline
    /// scoring regardless of how jobs were coalesced.
    fn score_group(
        &self,
        scorer: &mut BatchScorer,
        model: &Arc<ServeModel>,
        group: Vec<PredictJob>,
    ) {
        let pipeline = model.detector().pipeline();
        let in_shape = pipeline.input_shape();
        let total: usize = group.iter().map(|job| job.count).sum();
        let feat_len: usize = in_shape.iter().product();
        let mut flat = Vec::with_capacity(total * feat_len);
        for job in &group {
            flat.extend_from_slice(&job.features);
        }
        let out = scorer.infer_ragged(model.detector().network(), &flat, &in_shape, total);
        let out_len = out.len() / total;
        let mut soft = vec![0.0f32; out_len];
        let mut scores = Vec::with_capacity(total);
        for row in 0..total {
            loss::softmax_into(&out[row * out_len..(row + 1) * out_len], &mut soft);
            scores.push(soft[1]);
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(total as u64, Ordering::Relaxed);
        let mut offset = 0;
        for job in group {
            let job_scores = scores[offset..offset + job.count].to_vec();
            offset += job.count;
            let hotspots = job_scores.iter().map(|&p| p > job.threshold).collect();
            let response = PredictResponse {
                id: job.id,
                scores: job_scores,
                hotspots,
                threshold: job.threshold,
                batched: total,
                model: model.provenance(),
            };
            self.predicts.fetch_add(1, Ordering::Relaxed);
            self.clips.fetch_add(job.count as u64, Ordering::Relaxed);
            // A vanished client (closed connection) is not an error.
            let _ = job.reply.send(response.render());
        }
    }
}
