//! Unix-domain-socket front end for the serving [`Engine`].
//!
//! The daemon is std-only: a nonblocking [`UnixListener`] accept loop
//! (polled so shutdown is noticed promptly), one thread per connection,
//! and newline-delimited request/response lines dispatched through
//! [`Engine::handle_line`]. A connection may pipeline any number of
//! requests; replies come back in request order on the same connection.
//!
//! Shutdown is graceful: a `shutdown` request flips the engine's drain
//! flag (new predicts are refused with a structured `shutdown` error),
//! the batcher finishes every accepted job, the acknowledgement is sent,
//! and [`Server::run`] joins its threads and removes the socket file.

use crate::engine::{Control, Engine, EngineConfig, ServeModel, DEFAULT_QUEUE_CAPACITY};
use crate::ServerError;
use std::fs;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How often the accept loop and idle connections check the drain flag.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Read timeout on connection sockets, so idle readers notice shutdown.
const READ_POLL: Duration = Duration::from_millis(100);

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Filesystem path of the Unix domain socket to listen on. A stale
    /// file at this path is removed on bind.
    pub socket: PathBuf,
    /// Micro-batch queue bound (see [`EngineConfig`]).
    pub queue_capacity: usize,
}

impl ServerConfig {
    /// Config listening on `socket` with the default queue bound.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServerConfig {
            socket: socket.into(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }
}

/// A bound (but not yet running) daemon.
pub struct Server {
    engine: Arc<Engine>,
    listener: UnixListener,
    socket: PathBuf,
}

impl Server {
    /// Binds the socket and prepares the engine. The daemon does not
    /// serve until [`Server::run`].
    ///
    /// # Errors
    ///
    /// Socket-level failures ([`ServerError::Io`]).
    pub fn bind(model: ServeModel, config: &ServerConfig) -> Result<Server, ServerError> {
        match fs::remove_file(&config.socket) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            engine: Arc::new(Engine::new(
                model,
                EngineConfig {
                    queue_capacity: config.queue_capacity,
                },
            )),
            listener,
            socket: config.socket.clone(),
        })
    }

    /// The serving engine (for in-process inspection in tests/benches).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The socket path this daemon listens on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Serves until a `shutdown` request completes: spawns the batcher,
    /// accepts connections, drains, joins every thread, removes the
    /// socket file.
    ///
    /// # Errors
    ///
    /// Accept-loop failures other than `WouldBlock`/`Interrupted`; the
    /// daemon shuts down before reporting them.
    pub fn run(self) -> Result<(), ServerError> {
        let engine = self.engine.clone();
        let batcher = thread::Builder::new()
            .name("hotspot-batcher".into())
            .spawn({
                let engine = engine.clone();
                move || engine.run_batcher()
            })?;
        let mut handlers = Vec::new();
        let mut accept_error = None;
        while !engine.is_shutdown() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let engine = engine.clone();
                    handlers.push(
                        thread::Builder::new()
                            .name("hotspot-conn".into())
                            .spawn(move || handle_connection(&engine, stream))?,
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    engine.begin_shutdown();
                    accept_error = Some(e);
                    break;
                }
            }
        }
        let _ = batcher.join();
        for handler in handlers {
            let _ = handler.join();
        }
        let _ = fs::remove_file(&self.socket);
        match accept_error {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }
}

/// Reads newline-delimited request lines, writes one reply line each.
fn handle_connection(engine: &Engine, stream: UnixStream) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut reader = &stream;
    let mut writer = &stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                    if line.trim().is_empty() {
                        continue;
                    }
                    let (reply, control) = engine.handle_line(&line);
                    if writer.write_all(reply.as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err()
                        || writer.flush().is_err()
                    {
                        return;
                    }
                    if control == Control::Shutdown {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle poll: drop the connection once draining begins so
                // `run` can join us; any queued reply was already written.
                if engine.is_shutdown() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// A persistent client connection for streaming requests.
///
/// Used by the CLI `client` subcommand, the integration tests and the
/// serve bench; protocol errors still arrive as reply lines (`"ok":
/// false), only transport failures surface as [`io::Error`].
pub struct ClientConn {
    stream: UnixStream,
    buf: Vec<u8>,
}

impl ClientConn {
    /// Connects to a daemon socket.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(socket: &Path) -> io::Result<ClientConn> {
        Ok(ClientConn {
            stream: UnixStream::connect(socket)?,
            buf: Vec::new(),
        })
    }

    /// Sends one request line and blocks for its reply line.
    ///
    /// # Errors
    ///
    /// Transport failures, including the daemon closing the connection
    /// before replying.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_line()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection before replying",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// One-shot request helper: connect, send `line`, return the reply line.
///
/// # Errors
///
/// Transport failures (see [`ClientConn::request`]).
pub fn client_roundtrip(socket: &Path, line: &str) -> io::Result<String> {
    ClientConn::connect(socket)?.request(line)
}
