//! Golden-suite regression: the `golden-mini` suite must regenerate
//! byte-identically on every machine and commit. The committed manifest
//! under `tests/golden/` pins the clip bytes, boolean and per-corner label
//! bytes, per-family draw statistics and the augmentation output of the
//! full generation pipeline.

use hotspot_datagen::manifest::Manifest;
use hotspot_datagen::suite::SuiteSpec;
use hotspot_litho::{LithoConfig, LithoSimulator};
use std::fs;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/mini.manifest")
}

#[test]
fn golden_mini_regenerates_byte_identically() {
    let sim = LithoSimulator::new(LithoConfig::default()).expect("default litho config");
    let data = SuiteSpec::golden_mini().build(&sim);
    let manifest = Manifest::from_data(&data);
    let rendered = manifest.render();

    if std::env::var_os("HOTSPOT_BLESS").is_some() {
        fs::write(golden_path(), &rendered).expect("write golden manifest");
        eprintln!("blessed {}", golden_path().display());
        return;
    }

    let committed = fs::read_to_string(golden_path())
        .expect("committed golden manifest at crates/datagen/tests/golden/mini.manifest");
    assert_eq!(
        committed, rendered,
        "golden-mini regeneration diverged from the committed manifest. \
         If the generator change is intentional, bump SUITE_VERSION and re-bless with: \
         HOTSPOT_BLESS=1 cargo test -p hotspot-datagen --test golden"
    );

    // The committed document itself must parse and carry a valid total-crc.
    let parsed = Manifest::parse(&committed).expect("golden manifest parses");
    assert_eq!(parsed, manifest);
}
