//! Property-based tests for the benchmark-generation substrate.

use hotspot_datagen::manifest::{clip_crc, Manifest};
use hotspot_datagen::suite::SuiteSpec;
use hotspot_datagen::{patterns, AugmentConfig, Dataset, PatternKind, Sample, Symmetry};
use hotspot_geometry::{Clip, Rect};
use hotspot_litho::{LithoConfig, LithoSimulator};
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::HashSet;

fn arb_kind() -> impl Strategy<Value = PatternKind> {
    proptest::sample::select(PatternKind::ALL.to_vec())
}

/// A deliberately tiny suite so litho-labelled proptest cases stay cheap.
fn tiny_spec(seed: u64, augment: bool) -> SuiteSpec {
    let mut spec = SuiteSpec::golden_mini();
    spec.name = "TinyProp".into();
    spec.train_hs = 2;
    spec.train_nhs = 3;
    spec.test_hs = 2;
    spec.test_nhs = 3;
    spec.seed = seed;
    spec.corner_grid = None;
    spec.augment = augment.then(|| AugmentConfig {
        symmetries: vec![Symmetry::R90, Symmetry::MirrorY],
        perturbs: 1,
        eps_nm: 20,
        seed: seed ^ 0xA46,
    });
    spec
}

fn oracle() -> LithoSimulator {
    LithoSimulator::new(LithoConfig::default()).expect("default litho config")
}

fn all_crcs(data: &hotspot_datagen::BenchmarkData) -> Vec<u32> {
    data.train
        .iter()
        .chain(data.test.iter())
        .map(|s| clip_crc(&s.clip))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_pattern_is_valid_layout(kind in arb_kind(), seed in 0u64..10_000) {
        let clip = patterns::sample_pattern(
            kind, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert!(!clip.is_blank());
        let window = clip.window();
        prop_assert_eq!(window.width(), patterns::CLIP_SIDE_NM);
        prop_assert_eq!(window.height(), patterns::CLIP_SIDE_NM);
        for shape in clip.shapes() {
            prop_assert!(window.contains_rect(shape), "shape escapes window");
            prop_assert!(shape.width() > 0 && shape.height() > 0);
            // Grid-snapped to the 10 nm raster.
            prop_assert_eq!(shape.lo().x % 10, 0);
            prop_assert_eq!(shape.hi().y % 10, 0);
        }
    }

    #[test]
    fn pattern_generation_is_seed_deterministic(kind in arb_kind(), seed in 0u64..10_000) {
        let a = patterns::sample_pattern(kind, &mut rand::rngs::StdRng::seed_from_u64(seed));
        let b = patterns::sample_pattern(kind, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mix_sampling_never_panics(
        weights in proptest::collection::vec(0.01f64..5.0, 1..7),
        seed in 0u64..1_000,
    ) {
        let mix: Vec<(PatternKind, f64)> = PatternKind::ALL
            .iter()
            .copied()
            .zip(weights.iter().copied())
            .collect();
        let clip = patterns::sample_from_mix(
            &mix, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert!(!clip.is_blank());
    }

    #[test]
    fn dataset_counts_are_consistent(hs in 0usize..20, nhs in 0usize..20) {
        let window = Rect::new(0, 0, 100, 100).expect("window");
        let mut data = Dataset::new();
        for _ in 0..hs {
            data.push(Sample::new(Clip::new(window), true));
        }
        for _ in 0..nhs {
            data.push(Sample::new(Clip::new(window), false));
        }
        prop_assert_eq!(data.hotspot_count(), hs);
        prop_assert_eq!(data.non_hotspot_count(), nhs);
        prop_assert_eq!(data.len(), hs + nhs);
        if hs + nhs > 0 {
            let r = data.hotspot_ratio();
            prop_assert!((r - hs as f64 / (hs + nhs) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn split_tail_preserves_all_samples(
        n in 4usize..60,
        frac in 0.1f64..0.9,
        seed in 0u64..100,
    ) {
        let window = Rect::new(0, 0, 100, 100).expect("window");
        let mut data = Dataset::new();
        for i in 0..n {
            data.push(Sample::new(Clip::new(window), i % 3 == 0));
        }
        data.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let total_hs = data.hotspot_count();
        let (head, tail) = data.split_tail(frac);
        prop_assert_eq!(head.len() + tail.len(), n);
        prop_assert_eq!(head.hotspot_count() + tail.hotspot_count(), total_hs);
        prop_assert!(!tail.is_empty());
    }

    #[test]
    fn corner_labelled_splits_are_deterministic(
        n in 6usize..24,
        frac in 0.2f64..0.5,
        seed in 0u64..50,
    ) {
        // Stratified train/holdout splitting of a corner-labelled dataset
        // must be a pure function of the shuffle seed, per corner schema.
        let window = Rect::new(0, 0, 100, 100).expect("window");
        let build = || -> Dataset {
            (0..n)
                .map(|i| Sample::with_corners(
                    Clip::new(window),
                    hotspot_litho::CornerLabels {
                        fails: vec![i % 3 == 0, i % 4 == 0, false],
                        severity: if i % 3 == 0 || i % 4 == 0 { 1 } else { -2 },
                    },
                ))
                .collect()
        };
        let mut a = build();
        let mut b = build();
        a.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        b.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let (a_head, a_tail) = a.split_tail(frac);
        let (b_head, b_tail) = b.split_tail(frac);
        prop_assert_eq!(&a_head, &b_head);
        prop_assert_eq!(&a_tail, &b_tail);
        prop_assert_eq!(a_head.corner_schema(), Some(3));
        prop_assert_eq!(a_tail.corner_schema(), Some(3));
    }
}

// Litho-labelled suite builds are expensive (a full aerial simulation per
// draw), so the suite-level determinism properties run few cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same spec + seed ⇒ identical manifest (hence identical clip bytes,
    /// label bytes and per-family content CRCs).
    #[test]
    fn same_spec_regenerates_identical_manifest(seed in 0u64..1_000) {
        let sim = oracle();
        let spec = tiny_spec(seed, true);
        let a = spec.build(&sim);
        let b = spec.build(&sim);
        prop_assert_eq!(Manifest::from_data(&a).render(), Manifest::from_data(&b).render());
        prop_assert_eq!(all_crcs(&a), all_crcs(&b));
    }

    /// Different seeds ⇒ disjoint per-family RNG streams: no generated
    /// clip is shared between the two builds.
    #[test]
    fn different_seeds_draw_disjoint_clips(seed in 0u64..1_000) {
        let sim = oracle();
        let a = tiny_spec(seed, false).build(&sim);
        let b = tiny_spec(seed.wrapping_add(1), false).build(&sim);
        let crcs_a: HashSet<u32> = all_crcs(&a).into_iter().collect();
        for crc in all_crcs(&b) {
            prop_assert!(!crcs_a.contains(&crc), "seeds {seed}/{} share a clip", seed + 1);
        }
    }

    /// Augmented training clips never duplicate a base clip of either
    /// split (CRC-deduplicated during the build).
    #[test]
    fn augmented_clips_never_duplicate_base_crcs(seed in 0u64..1_000) {
        let sim = oracle();
        let spec = tiny_spec(seed, true);
        let mut base_spec = spec.clone();
        base_spec.augment = None;
        let with_aug = spec.build(&sim);
        let base = base_spec.build(&sim);
        let base_crcs: HashSet<u32> = all_crcs(&base).into_iter().collect();
        let base_train_crcs: HashSet<u32> =
            base.train.iter().map(|s| clip_crc(&s.clip)).collect();
        let mut extras = 0usize;
        for s in with_aug.train.iter() {
            let crc = clip_crc(&s.clip);
            if !base_train_crcs.contains(&crc) {
                extras += 1;
                prop_assert!(!base_crcs.contains(&crc), "augmented clip duplicates a base clip");
            }
        }
        prop_assert_eq!(extras, with_aug.augmented);
    }
}
