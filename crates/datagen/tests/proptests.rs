//! Property-based tests for the benchmark-generation substrate.

use hotspot_datagen::{patterns, Dataset, PatternKind, Sample};
use hotspot_geometry::{Clip, Rect};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_kind() -> impl Strategy<Value = PatternKind> {
    proptest::sample::select(PatternKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_pattern_is_valid_layout(kind in arb_kind(), seed in 0u64..10_000) {
        let clip = patterns::sample_pattern(
            kind, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert!(!clip.is_blank());
        let window = clip.window();
        prop_assert_eq!(window.width(), patterns::CLIP_SIDE_NM);
        prop_assert_eq!(window.height(), patterns::CLIP_SIDE_NM);
        for shape in clip.shapes() {
            prop_assert!(window.contains_rect(shape), "shape escapes window");
            prop_assert!(shape.width() > 0 && shape.height() > 0);
            // Grid-snapped to the 10 nm raster.
            prop_assert_eq!(shape.lo().x % 10, 0);
            prop_assert_eq!(shape.hi().y % 10, 0);
        }
    }

    #[test]
    fn pattern_generation_is_seed_deterministic(kind in arb_kind(), seed in 0u64..10_000) {
        let a = patterns::sample_pattern(kind, &mut rand::rngs::StdRng::seed_from_u64(seed));
        let b = patterns::sample_pattern(kind, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mix_sampling_never_panics(
        weights in proptest::collection::vec(0.01f64..5.0, 1..7),
        seed in 0u64..1_000,
    ) {
        let mix: Vec<(PatternKind, f64)> = PatternKind::ALL
            .iter()
            .copied()
            .zip(weights.iter().copied())
            .collect();
        let clip = patterns::sample_from_mix(
            &mix, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert!(!clip.is_blank());
    }

    #[test]
    fn dataset_counts_are_consistent(hs in 0usize..20, nhs in 0usize..20) {
        let window = Rect::new(0, 0, 100, 100).expect("window");
        let mut data = Dataset::new();
        for _ in 0..hs {
            data.push(Sample { clip: Clip::new(window), hotspot: true });
        }
        for _ in 0..nhs {
            data.push(Sample { clip: Clip::new(window), hotspot: false });
        }
        prop_assert_eq!(data.hotspot_count(), hs);
        prop_assert_eq!(data.non_hotspot_count(), nhs);
        prop_assert_eq!(data.len(), hs + nhs);
        if hs + nhs > 0 {
            let r = data.hotspot_ratio();
            prop_assert!((r - hs as f64 / (hs + nhs) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn split_tail_preserves_all_samples(
        n in 4usize..60,
        frac in 0.1f64..0.9,
        seed in 0u64..100,
    ) {
        let window = Rect::new(0, 0, 100, 100).expect("window");
        let mut data = Dataset::new();
        for i in 0..n {
            data.push(Sample { clip: Clip::new(window), hotspot: i % 3 == 0 });
        }
        data.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let total_hs = data.hotspot_count();
        let (head, tail) = data.split_tail(frac);
        prop_assert_eq!(head.len() + tail.len(), n);
        prop_assert_eq!(head.hotspot_count() + tail.hotspot_count(), total_hs);
        prop_assert!(!tail.is_empty());
    }
}
