//! Unlabeled candidate pools for active learning.
//!
//! Active learning draws candidates from a large *unlabeled* pool and pays
//! the lithography oracle only for the clips it selects. Following the
//! synthetic-pattern-database-enhancement line of work, [`ClipPool`]
//! synthesises that pool from the archetype families in [`patterns`] —
//! deterministically, so a resumed run regenerates the identical pool from
//! `(mix, size, seed)` alone and checkpoints only need to record indices.

use crate::patterns::{self, PatternKind};
use hotspot_geometry::Clip;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fixed, ordered pool of unlabeled clips.
///
/// Indices into the pool are stable for its lifetime: acquisition records
/// and checkpoints refer to pool members by index.
///
/// # Examples
///
/// ```
/// use hotspot_datagen::{ClipPool, PatternKind};
///
/// let mix = [(PatternKind::LineArray, 1.0), (PatternKind::LineTips, 1.0)];
/// let pool = ClipPool::synthetic(&mix, 10, 42);
/// assert_eq!(pool.len(), 10);
/// // Same spec => identical pool.
/// assert_eq!(pool.clips(), ClipPool::synthetic(&mix, 10, 42).clips());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClipPool {
    clips: Vec<Clip>,
}

impl ClipPool {
    /// Synthesises a pool of `size` clips drawn from a weighted archetype
    /// mix, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `mix` is empty or all weights are zero (see
    /// [`patterns::sample_from_mix`]).
    pub fn synthetic(mix: &[(PatternKind, f64)], size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let clips = (0..size)
            .map(|_| patterns::sample_from_mix(mix, &mut rng))
            .collect();
        ClipPool { clips }
    }

    /// Wraps an existing clip collection (e.g. loaded from disk).
    pub fn from_clips(clips: Vec<Clip>) -> Self {
        ClipPool { clips }
    }

    /// Pool size.
    #[inline]
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// Whether the pool is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }

    /// The clip at a pool index.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&Clip> {
        self.clips.get(index)
    }

    /// All clips in pool order.
    #[inline]
    pub fn clips(&self) -> &[Clip] {
        &self.clips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> Vec<(PatternKind, f64)> {
        vec![
            (PatternKind::LineArray, 2.0),
            (PatternKind::TipToTip, 1.0),
            (PatternKind::ContactArray, 1.0),
        ]
    }

    #[test]
    fn synthetic_pool_is_deterministic() {
        let a = ClipPool::synthetic(&mix(), 25, 7);
        let b = ClipPool::synthetic(&mix(), 25, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        assert!(a.clips().iter().all(|c| !c.is_blank()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = ClipPool::synthetic(&mix(), 25, 7);
        let b = ClipPool::synthetic(&mix(), 25, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn indexing_is_stable() {
        let pool = ClipPool::synthetic(&mix(), 5, 3);
        assert!(pool.get(4).is_some());
        assert!(pool.get(5).is_none());
        let from = ClipPool::from_clips(pool.clips().to_vec());
        assert_eq!(from, pool);
    }
}
