//! Benchmark-suite builders with paper-matched class ratios.

use crate::dataset::{Dataset, Sample};
use crate::patterns::{self, PatternKind};
use hotspot_litho::LithoSimulator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Target composition of one benchmark (Table 2's left columns) plus the
/// pattern mix it is generated from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteSpec {
    /// Benchmark name as printed in tables.
    pub name: String,
    /// Hotspot count in the training set.
    pub train_hs: usize,
    /// Non-hotspot count in the training set.
    pub train_nhs: usize,
    /// Hotspot count in the testing set.
    pub test_hs: usize,
    /// Non-hotspot count in the testing set.
    pub test_nhs: usize,
    /// Weighted archetype mix the clips are drawn from.
    pub mix: Vec<(PatternKind, f64)>,
    /// Master RNG seed; the full benchmark is a pure function of the spec.
    pub seed: u64,
}

impl SuiteSpec {
    /// The merged ICCAD-2012 benchmark (paper: 1204/17096 train,
    /// 2524/13503 test), scaled by `scale` with a floor of 8 samples per
    /// bucket. Mostly regular line/space patterns — the "easy" benchmark.
    pub fn iccad(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "ICCAD".into(),
            train_hs: scaled(1204, scale),
            train_nhs: scaled(17096, scale),
            test_hs: scaled(2524, scale),
            test_nhs: scaled(13503, scale),
            mix: vec![
                (PatternKind::LineArray, 3.0),
                (PatternKind::LineTips, 2.0),
                (PatternKind::TipToTip, 1.0),
                (PatternKind::Isolated, 2.0),
                (PatternKind::RandomRouting, 2.0),
            ],
            seed: 0x1CCAD2012,
        }
    }

    /// Industry1 (paper: 34281/15635 train, 17157/7801 test): a
    /// hotspot-majority benchmark of aggressive tip and contact geometry.
    pub fn industry1(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "Industry1".into(),
            train_hs: scaled(34281, scale),
            train_nhs: scaled(15635, scale),
            test_hs: scaled(17157, scale),
            test_nhs: scaled(7801, scale),
            mix: vec![
                (PatternKind::LineTips, 3.0),
                (PatternKind::TipToTip, 2.0),
                (PatternKind::ContactArray, 3.0),
                (PatternKind::LineArray, 1.0),
                (PatternKind::Isolated, 1.0),
            ],
            seed: 0x1D_0001,
        }
    }

    /// Industry2 (paper: 15197/48758 train, 7520/24457 test): diverse
    /// routing-dominated patterns.
    pub fn industry2(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "Industry2".into(),
            train_hs: scaled(15197, scale),
            train_nhs: scaled(48758, scale),
            test_hs: scaled(7520, scale),
            test_nhs: scaled(24457, scale),
            mix: vec![
                (PatternKind::RandomRouting, 3.0),
                (PatternKind::Jogs, 2.0),
                (PatternKind::LineArray, 2.0),
                (PatternKind::LineTips, 1.0),
                (PatternKind::Isolated, 2.0),
            ],
            seed: 0x1D_0002,
        }
    }

    /// Industry3 (paper: 24776/49315 train, 12228/24817 test): the largest
    /// and most heterogeneous benchmark — every archetype contributes.
    pub fn industry3(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "Industry3".into(),
            train_hs: scaled(24776, scale),
            train_nhs: scaled(49315, scale),
            test_hs: scaled(12228, scale),
            test_nhs: scaled(24817, scale),
            mix: PatternKind::ALL.iter().map(|&k| (k, 1.0)).collect(),
            seed: 0x1D_0003,
        }
    }

    /// All four benchmarks of Table 2 at the given scale.
    pub fn table2_suites(scale: f64) -> Vec<SuiteSpec> {
        vec![
            SuiteSpec::iccad(scale),
            SuiteSpec::industry1(scale),
            SuiteSpec::industry2(scale),
            SuiteSpec::industry3(scale),
        ]
    }

    /// Total sample count across both splits.
    pub fn total(&self) -> usize {
        self.train_hs + self.train_nhs + self.test_hs + self.test_nhs
    }

    /// Generates the benchmark: draws clips from the archetype mix, labels
    /// each with the lithography oracle, and fills the four class buckets
    /// exactly. Labels are *never* forced — generation draws until the
    /// oracle has produced enough of each class.
    ///
    /// # Panics
    ///
    /// Panics if the mix is so skewed that a bucket cannot be filled within
    /// `500 ×` the requested total draws (a misconfigured mix, e.g. only
    /// [`PatternKind::Isolated`] with a hotspot quota).
    pub fn build(&self, sim: &LithoSimulator) -> BenchmarkData {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut hs_pool: Vec<Sample> = Vec::new();
        let mut nhs_pool: Vec<Sample> = Vec::new();
        let need_hs = self.train_hs + self.test_hs;
        let need_nhs = self.train_nhs + self.test_nhs;
        let max_draws = 500 * self.total().max(16);
        let mut draws = 0usize;
        while hs_pool.len() < need_hs || nhs_pool.len() < need_nhs {
            assert!(
                draws < max_draws,
                "suite '{}' could not fill class buckets after {draws} draws \
                 ({}/{} hotspots, {}/{} non-hotspots) — archetype mix too skewed",
                self.name,
                hs_pool.len(),
                need_hs,
                nhs_pool.len(),
                need_nhs
            );
            draws += 1;
            let clip = patterns::sample_from_mix(&self.mix, &mut rng);
            let hotspot = sim.label_clip(&clip);
            let (pool, need) = if hotspot {
                (&mut hs_pool, need_hs)
            } else {
                (&mut nhs_pool, need_nhs)
            };
            if pool.len() < need {
                pool.push(Sample { clip, hotspot });
            }
        }
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for (i, s) in hs_pool.into_iter().enumerate() {
            if i < self.train_hs {
                train.push(s);
            } else {
                test.push(s);
            }
        }
        for (i, s) in nhs_pool.into_iter().enumerate() {
            if i < self.train_nhs {
                train.push(s);
            } else {
                test.push(s);
            }
        }
        train.shuffle(&mut rng);
        test.shuffle(&mut rng);
        BenchmarkData {
            spec: self.clone(),
            train,
            test,
        }
    }
}

fn scaled(count: usize, scale: f64) -> usize {
    assert!(scale > 0.0, "scale must be positive");
    ((count as f64 * scale).round() as usize).max(8)
}

/// A generated benchmark: the spec it came from plus train/test splits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkData {
    /// The generating spec.
    pub spec: SuiteSpec,
    /// Training split (exactly `train_hs` + `train_nhs` samples).
    pub train: Dataset,
    /// Testing split (exactly `test_hs` + `test_nhs` samples).
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_litho::LithoConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig::default()).unwrap()
    }

    fn tiny(spec_fn: fn(f64) -> SuiteSpec) -> BenchmarkData {
        spec_fn(0.001).build(&sim())
    }

    #[test]
    fn iccad_quotas_met_exactly() {
        let data = tiny(SuiteSpec::iccad);
        assert_eq!(data.train.hotspot_count(), data.spec.train_hs);
        assert_eq!(data.train.non_hotspot_count(), data.spec.train_nhs);
        assert_eq!(data.test.hotspot_count(), data.spec.test_hs);
        assert_eq!(data.test.non_hotspot_count(), data.spec.test_nhs);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = tiny(SuiteSpec::iccad);
        let b = tiny(SuiteSpec::iccad);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn suites_differ() {
        let a = tiny(SuiteSpec::industry2);
        let b = tiny(SuiteSpec::industry3);
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn labels_match_oracle() {
        let s = sim();
        let data = tiny(SuiteSpec::industry3);
        for sample in data.train.iter().take(10) {
            assert_eq!(s.label_clip(&sample.clip), sample.hotspot);
        }
    }

    #[test]
    fn scaled_counts_floor_at_eight() {
        let spec = SuiteSpec::iccad(1e-9);
        assert_eq!(spec.train_hs, 8);
        assert_eq!(spec.total(), 32);
    }

    #[test]
    fn paper_ratios_preserved_at_scale() {
        let spec = SuiteSpec::industry2(0.1);
        let paper_ratio = 15197.0 / 48758.0;
        let ours = spec.train_hs as f64 / spec.train_nhs as f64;
        assert!((ours - paper_ratio).abs() / paper_ratio < 0.01);
    }
}
