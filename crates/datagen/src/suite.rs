//! Benchmark-suite builders with paper-matched class ratios.
//!
//! Every suite is a pure function of its [`SuiteSpec`]: the same spec and
//! seed always regenerate byte-identical clips, labels and manifest CRCs.
//! Determinism is structured per family — each archetype in the mix draws
//! from its own seeded RNG stream (derived from the master seed and the
//! family's fixed index), while a separate chooser stream picks which
//! family produces the next clip. Adding a family to a mix therefore never
//! perturbs the clips another family generates.

use crate::augment::{self, AugmentConfig, Symmetry};
use crate::dataset::{Dataset, Sample};
use crate::manifest::clip_crc;
use crate::patterns::{self, PatternKind};
use hotspot_litho::{CornerGrid, LithoSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Current suite-generation recipe version, embedded in specs and
/// manifests. Bump whenever the generation algorithm changes so persisted
/// manifests detect stale regeneration recipes.
pub const SUITE_VERSION: u32 = 2;

/// Splitmix64-style stream derivation: statistically independent seeds for
/// the chooser, each family and the shuffle from one master seed.
fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-family RNG stream id: tied to the family's position in
/// [`PatternKind::ALL`] (stable across mixes), not its position in a mix.
fn family_stream(kind: PatternKind) -> u64 {
    1 + PatternKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every PatternKind appears in ALL") as u64
}

const CHOOSER_STREAM: u64 = 0;
const SHUFFLE_STREAM: u64 = u64::MAX;

/// Target composition of one benchmark (Table 2's left columns) plus the
/// pattern mix it is generated from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteSpec {
    /// Benchmark name as printed in tables.
    pub name: String,
    /// Hotspot count in the training set.
    pub train_hs: usize,
    /// Non-hotspot count in the training set.
    pub train_nhs: usize,
    /// Hotspot count in the testing set.
    pub test_hs: usize,
    /// Non-hotspot count in the testing set.
    pub test_nhs: usize,
    /// Weighted archetype mix the clips are drawn from.
    pub mix: Vec<(PatternKind, f64)>,
    /// Master RNG seed; the full benchmark is a pure function of the spec.
    pub seed: u64,
    /// Generation-recipe version ([`SUITE_VERSION`] for specs built by this
    /// crate).
    pub version: u32,
    /// Optional dose×defocus process-corner grid: when set, every sample
    /// carries per-corner labels ([`Sample::corners`]) and the hotspot
    /// label means "fails at any grid corner".
    pub corner_grid: Option<CornerGrid>,
    /// Optional oracle-checked augmentation; variants are appended to the
    /// *training* split (never the test split), after CRC-deduplication
    /// against every base clip.
    pub augment: Option<AugmentConfig>,
}

impl SuiteSpec {
    /// The merged ICCAD-2012 benchmark (paper: 1204/17096 train,
    /// 2524/13503 test), scaled by `scale` with a floor of 8 samples per
    /// bucket. Mostly regular line/space patterns — the "easy" benchmark.
    pub fn iccad(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "ICCAD".into(),
            train_hs: scaled(1204, scale),
            train_nhs: scaled(17096, scale),
            test_hs: scaled(2524, scale),
            test_nhs: scaled(13503, scale),
            mix: vec![
                (PatternKind::LineArray, 3.0),
                (PatternKind::LineTips, 2.0),
                (PatternKind::TipToTip, 1.0),
                (PatternKind::Isolated, 2.0),
                (PatternKind::RandomRouting, 2.0),
            ],
            seed: 0x1CCAD2012,
            version: SUITE_VERSION,
            corner_grid: None,
            augment: None,
        }
    }

    /// Industry1 (paper: 34281/15635 train, 17157/7801 test): a
    /// hotspot-majority benchmark of aggressive tip and contact geometry.
    pub fn industry1(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "Industry1".into(),
            train_hs: scaled(34281, scale),
            train_nhs: scaled(15635, scale),
            test_hs: scaled(17157, scale),
            test_nhs: scaled(7801, scale),
            mix: vec![
                (PatternKind::LineTips, 3.0),
                (PatternKind::TipToTip, 2.0),
                (PatternKind::ContactArray, 3.0),
                (PatternKind::LineArray, 1.0),
                (PatternKind::Isolated, 1.0),
            ],
            seed: 0x1D_0001,
            version: SUITE_VERSION,
            corner_grid: None,
            augment: None,
        }
    }

    /// Industry2 (paper: 15197/48758 train, 7520/24457 test): diverse
    /// routing-dominated patterns.
    pub fn industry2(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "Industry2".into(),
            train_hs: scaled(15197, scale),
            train_nhs: scaled(48758, scale),
            test_hs: scaled(7520, scale),
            test_nhs: scaled(24457, scale),
            mix: vec![
                (PatternKind::RandomRouting, 3.0),
                (PatternKind::Jogs, 2.0),
                (PatternKind::LineArray, 2.0),
                (PatternKind::LineTips, 1.0),
                (PatternKind::Isolated, 2.0),
            ],
            seed: 0x1D_0002,
            version: SUITE_VERSION,
            corner_grid: None,
            augment: None,
        }
    }

    /// Industry3 (paper: 24776/49315 train, 12228/24817 test): the largest
    /// and most heterogeneous benchmark — every archetype contributes.
    pub fn industry3(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "Industry3".into(),
            train_hs: scaled(24776, scale),
            train_nhs: scaled(49315, scale),
            test_hs: scaled(12228, scale),
            test_nhs: scaled(24817, scale),
            mix: PatternKind::ALL.iter().map(|&k| (k, 1.0)).collect(),
            seed: 0x1D_0003,
            version: SUITE_VERSION,
            corner_grid: None,
            augment: None,
        }
    }

    /// Topology benchmark: the four junction/via/meander families mixed
    /// with a line-array baseline, labelled over a 3-dose × 2-defocus
    /// process-corner grid, with oracle-checked augmentation on the
    /// training split.
    pub fn topo(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "Topo".into(),
            train_hs: scaled(900, scale),
            train_nhs: scaled(2100, scale),
            test_hs: scaled(450, scale),
            test_nhs: scaled(1050, scale),
            mix: vec![
                (PatternKind::TJunctions, 2.0),
                (PatternKind::Serpentine, 2.0),
                (PatternKind::DenseVias, 1.0),
                (PatternKind::Redistribution, 1.0),
                (PatternKind::LineArray, 1.0),
            ],
            seed: 0x70_0001,
            version: SUITE_VERSION,
            corner_grid: Some(CornerGrid::new(0.05, 60.0, 3, 2).expect("valid topo grid")),
            augment: Some(AugmentConfig {
                symmetries: vec![Symmetry::R90, Symmetry::R180, Symmetry::MirrorX],
                perturbs: 1,
                eps_nm: 10,
                seed: 0x70_0A16,
            }),
        }
    }

    /// Via-dominated benchmark: staggered dense via arrays plus regular
    /// contact arrays (corner-to-corner bridging and necking modes).
    pub fn vias(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "Vias".into(),
            train_hs: scaled(700, scale),
            train_nhs: scaled(1700, scale),
            test_hs: scaled(350, scale),
            test_nhs: scaled(850, scale),
            mix: vec![
                (PatternKind::DenseVias, 3.0),
                (PatternKind::ContactArray, 2.0),
                (PatternKind::Isolated, 1.0),
            ],
            seed: 0x71A5,
            version: SUITE_VERSION,
            corner_grid: None,
            augment: None,
        }
    }

    /// Redistribution-layer benchmark: wide+narrow mixes, T-junction rails
    /// and serpentine test structures, with augmentation.
    pub fn rdl(scale: f64) -> SuiteSpec {
        SuiteSpec {
            name: "RDL".into(),
            train_hs: scaled(600, scale),
            train_nhs: scaled(1400, scale),
            test_hs: scaled(300, scale),
            test_nhs: scaled(700, scale),
            mix: vec![
                (PatternKind::Redistribution, 3.0),
                (PatternKind::TJunctions, 2.0),
                (PatternKind::Serpentine, 2.0),
                (PatternKind::Isolated, 1.0),
            ],
            seed: 0x7D1,
            version: SUITE_VERSION,
            corner_grid: None,
            augment: Some(AugmentConfig {
                symmetries: vec![Symmetry::R180, Symmetry::MirrorY],
                perturbs: 1,
                eps_nm: 10,
                seed: 0x7D1_0A16,
            }),
        }
    }

    /// A fixed miniature suite pinned by the golden-manifest regression
    /// test: small enough to regenerate in CI, exercising the new
    /// families, the corner grid and augmentation. Never rescaled — its
    /// manifest is committed under `tests/golden/`.
    pub fn golden_mini() -> SuiteSpec {
        SuiteSpec {
            name: "GoldenMini".into(),
            train_hs: 4,
            train_nhs: 6,
            test_hs: 2,
            test_nhs: 4,
            mix: vec![
                (PatternKind::LineArray, 1.0),
                (PatternKind::TJunctions, 1.0),
                (PatternKind::DenseVias, 1.0),
                (PatternKind::Serpentine, 1.0),
            ],
            seed: 0x601D_0001,
            version: SUITE_VERSION,
            corner_grid: Some(CornerGrid::new(0.05, 60.0, 3, 2).expect("valid golden grid")),
            augment: Some(AugmentConfig {
                symmetries: vec![Symmetry::R90, Symmetry::MirrorX],
                perturbs: 1,
                eps_nm: 10,
                seed: 7,
            }),
        }
    }

    /// All four benchmarks of Table 2 at the given scale.
    pub fn table2_suites(scale: f64) -> Vec<SuiteSpec> {
        vec![
            SuiteSpec::iccad(scale),
            SuiteSpec::industry1(scale),
            SuiteSpec::industry2(scale),
            SuiteSpec::industry3(scale),
        ]
    }

    /// Every loadable suite name, in registry order.
    pub const REGISTRY: [&'static str; 8] = [
        "iccad",
        "industry1",
        "industry2",
        "industry3",
        "topo",
        "vias",
        "rdl",
        "golden-mini",
    ];

    /// Looks a suite up by registry name at the given scale.
    /// `"golden-mini"` ignores the scale — it is pinned by the golden
    /// regression manifest.
    pub fn by_name(name: &str, scale: f64) -> Option<SuiteSpec> {
        Some(match name {
            "iccad" => SuiteSpec::iccad(scale),
            "industry1" => SuiteSpec::industry1(scale),
            "industry2" => SuiteSpec::industry2(scale),
            "industry3" => SuiteSpec::industry3(scale),
            "topo" => SuiteSpec::topo(scale),
            "vias" => SuiteSpec::vias(scale),
            "rdl" => SuiteSpec::rdl(scale),
            "golden-mini" => SuiteSpec::golden_mini(),
            _ => return None,
        })
    }

    /// Total sample count across both splits.
    pub fn total(&self) -> usize {
        self.train_hs + self.train_nhs + self.test_hs + self.test_nhs
    }

    /// Generates the benchmark: draws clips from the archetype mix (each
    /// family from its own RNG stream; see module docs), labels each with
    /// the lithography oracle, and fills the four class buckets exactly.
    /// Labels are *never* forced — generation draws until the oracle has
    /// produced enough of each class.
    ///
    /// When [`SuiteSpec::corner_grid`] is set, labelling runs over the grid
    /// (the passed simulator's optics with the grid's dose/defocus corners)
    /// and every sample carries per-corner labels. When
    /// [`SuiteSpec::augment`] is set, oracle-checked variants are appended
    /// to the training split after CRC-deduplication against every base
    /// clip of both splits.
    ///
    /// # Panics
    ///
    /// Panics if the mix is so skewed that a bucket cannot be filled within
    /// `500 ×` the requested total draws (a misconfigured mix, e.g. only
    /// [`PatternKind::Isolated`] with a hotspot quota), or if the spec's
    /// corner grid cannot be combined with the simulator's optics.
    pub fn build(&self, sim: &LithoSimulator) -> BenchmarkData {
        let grid_sim = self.corner_grid.as_ref().map(|grid| {
            LithoSimulator::new(sim.config().clone().with_corner_grid(grid))
                .expect("corner grid composes with the base optics")
        });
        let label_sim = grid_sim.as_ref().unwrap_or(sim);

        let total_weight: f64 = self.mix.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(
            total_weight > 0.0,
            "suite '{}' needs a mix with positive total weight",
            self.name
        );
        let mut chooser = StdRng::seed_from_u64(derive_seed(self.seed, CHOOSER_STREAM));
        let mut streams: Vec<StdRng> = self
            .mix
            .iter()
            .map(|&(kind, _)| StdRng::seed_from_u64(derive_seed(self.seed, family_stream(kind))))
            .collect();
        let mut families: Vec<FamilyStats> = self
            .mix
            .iter()
            .map(|&(kind, _)| FamilyStats {
                kind,
                drawn: 0,
                kept_hs: 0,
                kept_nhs: 0,
                crc: 0,
            })
            .collect();
        let mut family_crc_bytes: Vec<Vec<u8>> = vec![Vec::new(); self.mix.len()];

        let mut hs_pool: Vec<Sample> = Vec::new();
        let mut nhs_pool: Vec<Sample> = Vec::new();
        let need_hs = self.train_hs + self.test_hs;
        let need_nhs = self.train_nhs + self.test_nhs;
        let max_draws = 500 * self.total().max(16);
        let mut draws = 0usize;
        while hs_pool.len() < need_hs || nhs_pool.len() < need_nhs {
            assert!(
                draws < max_draws,
                "suite '{}' could not fill class buckets after {draws} draws \
                 ({}/{} hotspots, {}/{} non-hotspots) — archetype mix too skewed",
                self.name,
                hs_pool.len(),
                need_hs,
                nhs_pool.len(),
                need_nhs
            );
            draws += 1;
            let mut t = chooser.gen_range(0.0..total_weight);
            let mut fi = self.mix.len() - 1;
            for (i, &(_, w)) in self.mix.iter().enumerate() {
                let w = w.max(0.0);
                if t < w {
                    fi = i;
                    break;
                }
                t -= w;
            }
            let clip = patterns::sample_pattern(self.mix[fi].0, &mut streams[fi]);
            families[fi].drawn += 1;
            let sample = if self.corner_grid.is_some() {
                let corners = label_sim.corner_labels(&clip);
                Sample::with_corners(clip, corners)
            } else {
                let hotspot = label_sim.label_clip(&clip);
                Sample::new(clip, hotspot)
            };
            let (pool, need) = if sample.hotspot {
                (&mut hs_pool, need_hs)
            } else {
                (&mut nhs_pool, need_nhs)
            };
            if pool.len() < need {
                if sample.hotspot {
                    families[fi].kept_hs += 1;
                } else {
                    families[fi].kept_nhs += 1;
                }
                family_crc_bytes[fi].extend_from_slice(&clip_crc(&sample.clip).to_le_bytes());
                pool.push(sample);
            }
        }
        for (stats, bytes) in families.iter_mut().zip(&family_crc_bytes) {
            stats.crc = hotspot_nn::serialize::crc32(bytes);
        }

        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for (i, s) in hs_pool.into_iter().enumerate() {
            if i < self.train_hs {
                train.push(s);
            } else {
                test.push(s);
            }
        }
        for (i, s) in nhs_pool.into_iter().enumerate() {
            if i < self.train_nhs {
                train.push(s);
            } else {
                test.push(s);
            }
        }

        let mut augmented = 0usize;
        if let Some(config) = &self.augment {
            let variants = augment::augment_resimulated(&train, label_sim, config)
                .expect("well-formed clips transform cleanly");
            let base: HashSet<u32> = train
                .iter()
                .chain(test.iter())
                .map(|s| clip_crc(&s.clip))
                .collect();
            let fresh: Dataset = variants
                .into_iter()
                .filter(|s| !base.contains(&clip_crc(&s.clip)))
                .collect();
            augmented = fresh.len();
            train
                .merge(fresh)
                .expect("augmented variants share the window and corner schema");
        }

        let mut shuffle_rng = StdRng::seed_from_u64(derive_seed(self.seed, SHUFFLE_STREAM));
        train.shuffle(&mut shuffle_rng);
        test.shuffle(&mut shuffle_rng);
        BenchmarkData {
            spec: self.clone(),
            train,
            test,
            families,
            augmented,
        }
    }
}

fn scaled(count: usize, scale: f64) -> usize {
    assert!(scale > 0.0, "scale must be positive");
    ((count as f64 * scale).round() as usize).max(8)
}

/// Per-family generation statistics for one suite build: how often the
/// family was drawn, how many of its clips each class bucket kept, and a
/// content CRC over the kept clips (in draw order) — the unit the manifest
/// pins per family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyStats {
    /// The pattern family.
    pub kind: PatternKind,
    /// Total draws from this family's stream (kept or discarded).
    pub drawn: usize,
    /// Kept hotspot clips.
    pub kept_hs: usize,
    /// Kept non-hotspot clips.
    pub kept_nhs: usize,
    /// CRC-32 over the kept clips' content CRCs in draw order.
    pub crc: u32,
}

impl FamilyStats {
    /// Total kept clips across both classes.
    pub fn kept(&self) -> usize {
        self.kept_hs + self.kept_nhs
    }
}

/// A generated benchmark: the spec it came from plus train/test splits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkData {
    /// The generating spec.
    pub spec: SuiteSpec,
    /// Training split: exactly `train_hs` + `train_nhs` base samples, plus
    /// `augmented` oracle-checked variants when the spec augments.
    pub train: Dataset,
    /// Testing split (exactly `test_hs` + `test_nhs` samples; never
    /// augmented).
    pub test: Dataset,
    /// Per-family generation statistics, in mix order.
    pub families: Vec<FamilyStats>,
    /// Number of augmented variants appended to the training split.
    pub augmented: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_litho::LithoConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig::default()).unwrap()
    }

    fn tiny(spec_fn: fn(f64) -> SuiteSpec) -> BenchmarkData {
        spec_fn(0.001).build(&sim())
    }

    #[test]
    fn iccad_quotas_met_exactly() {
        let data = tiny(SuiteSpec::iccad);
        assert_eq!(data.train.hotspot_count(), data.spec.train_hs);
        assert_eq!(data.train.non_hotspot_count(), data.spec.train_nhs);
        assert_eq!(data.test.hotspot_count(), data.spec.test_hs);
        assert_eq!(data.test.non_hotspot_count(), data.spec.test_nhs);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = tiny(SuiteSpec::iccad);
        let b = tiny(SuiteSpec::iccad);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn suites_differ() {
        let a = tiny(SuiteSpec::industry2);
        let b = tiny(SuiteSpec::industry3);
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn labels_match_oracle() {
        let s = sim();
        let data = tiny(SuiteSpec::industry3);
        for sample in data.train.iter().take(10) {
            assert_eq!(s.label_clip(&sample.clip), sample.hotspot);
        }
    }

    #[test]
    fn scaled_counts_floor_at_eight() {
        let spec = SuiteSpec::iccad(1e-9);
        assert_eq!(spec.train_hs, 8);
        assert_eq!(spec.total(), 32);
    }

    #[test]
    fn paper_ratios_preserved_at_scale() {
        let spec = SuiteSpec::industry2(0.1);
        let paper_ratio = 15197.0 / 48758.0;
        let ours = spec.train_hs as f64 / spec.train_nhs as f64;
        assert!((ours - paper_ratio).abs() / paper_ratio < 0.01);
    }

    #[test]
    fn registry_resolves_every_name() {
        for name in SuiteSpec::REGISTRY {
            let spec = SuiteSpec::by_name(name, 0.01)
                .unwrap_or_else(|| panic!("registry name '{name}' does not resolve"));
            assert!(!spec.mix.is_empty());
            assert_eq!(spec.version, SUITE_VERSION);
        }
        assert!(SuiteSpec::by_name("no-such-suite", 1.0).is_none());
    }

    #[test]
    fn corner_suite_carries_per_corner_labels() {
        let data = SuiteSpec::golden_mini().build(&sim());
        let corners = 3 * 2; // 3-dose × 2-defocus grid
        assert_eq!(data.train.corner_schema(), Some(corners));
        assert_eq!(data.test.corner_schema(), Some(corners));
        // Test split is never augmented: exact quotas.
        assert_eq!(data.test.len(), 6);
        assert_eq!(data.test.hotspot_count(), 2);
        // Train split holds the base quota plus the augmented variants.
        assert_eq!(data.train.len(), 10 + data.augmented);
        assert!(data.augmented > 0);
        for s in data.train.iter().chain(data.test.iter()) {
            let c = s.corners.as_ref().expect("corner-labelled sample");
            assert_eq!(s.hotspot, c.is_hotspot());
        }
    }

    #[test]
    fn family_stats_account_for_every_base_clip() {
        let data = tiny(SuiteSpec::iccad);
        let kept: usize = data.families.iter().map(FamilyStats::kept).sum();
        assert_eq!(
            kept,
            data.spec.total(),
            "family stats must cover the base clips"
        );
        let kept_hs: usize = data.families.iter().map(|f| f.kept_hs).sum();
        assert_eq!(kept_hs, data.spec.train_hs + data.spec.test_hs);
        for f in &data.families {
            assert!(f.drawn >= f.kept(), "{:?} drew fewer than it kept", f.kind);
            if f.kept() > 0 {
                assert_ne!(f.crc, 0, "{:?} kept clips but has no content crc", f.kind);
            }
        }
    }

    #[test]
    fn augmented_variants_never_duplicate_base_clips() {
        let spec = SuiteSpec::golden_mini();
        let mut base_spec = spec.clone();
        base_spec.augment = None;
        let with_aug = spec.build(&sim());
        let base = base_spec.build(&sim());
        let base_crcs: std::collections::HashSet<u32> = base
            .train
            .iter()
            .chain(base.test.iter())
            .map(|s| clip_crc(&s.clip))
            .collect();
        let base_train_crcs: std::collections::HashSet<u32> =
            base.train.iter().map(|s| clip_crc(&s.clip)).collect();
        let mut extras = 0usize;
        for s in with_aug.train.iter() {
            if !base_train_crcs.contains(&clip_crc(&s.clip)) {
                extras += 1;
                assert!(
                    !base_crcs.contains(&clip_crc(&s.clip)),
                    "augmented clip duplicates a base clip"
                );
            }
        }
        assert_eq!(extras, with_aug.augmented);
    }

    #[test]
    fn different_seeds_produce_disjoint_family_streams() {
        let mut a = SuiteSpec::golden_mini();
        let mut b = SuiteSpec::golden_mini();
        a.augment = None;
        b.augment = None;
        b.seed = a.seed.wrapping_add(1);
        let da = a.build(&sim());
        let db = b.build(&sim());
        let crcs_a: std::collections::HashSet<u32> = da
            .train
            .iter()
            .chain(da.test.iter())
            .map(|s| clip_crc(&s.clip))
            .collect();
        for s in db.train.iter().chain(db.test.iter()) {
            assert!(
                !crcs_a.contains(&clip_crc(&s.clip)),
                "seed {} and {} share a generated clip",
                a.seed,
                b.seed
            );
        }
    }

    #[test]
    fn new_family_does_not_perturb_other_streams() {
        // Per-family streams: adding a family to the mix must not change
        // the clips an existing family generates.
        let mut small = SuiteSpec::golden_mini();
        small.augment = None;
        small.corner_grid = None;
        small.mix = vec![(PatternKind::LineArray, 1.0)];
        let mut wider = small.clone();
        wider.mix = vec![(PatternKind::LineArray, 1.0), (PatternKind::DenseVias, 1.0)];
        let a = small.build(&sim());
        let b = wider.build(&sim());
        // Every LineArray clip in `b` must come from the same stream `a`
        // drew from: the first N_a draws of that stream are a prefix shared
        // by both builds, so any clip in both builds' pools is identical
        // bytes. Weak but cheap check: the two builds share at least one
        // clip CRC (impossible under per-build monolithic RNG reseeding).
        let crcs_a: std::collections::HashSet<u32> = a
            .train
            .iter()
            .chain(a.test.iter())
            .map(|s| clip_crc(&s.clip))
            .collect();
        let shared = b
            .train
            .iter()
            .chain(b.test.iter())
            .filter(|s| crcs_a.contains(&clip_crc(&s.clip)))
            .count();
        assert!(
            shared > 0,
            "adding a family rewired the existing family's stream"
        );
    }
}
