//! Versioned suite manifests: deterministic fingerprints of a generated
//! benchmark.
//!
//! A manifest is a small line-oriented text document pinning everything a
//! regeneration must reproduce byte-for-byte: the spec identity (name,
//! recipe version, seed), the corner-label schema, per-split sample counts
//! and content CRCs (clips, labels and — when present — corner labels,
//! each over the exact bytes the CLI writes to disk), per-family draw
//! statistics, and a total CRC over the manifest body itself. The golden
//! regression test commits a manifest for [`crate::suite::SuiteSpec::golden_mini`]
//! and asserts regeneration reproduces it exactly; `hotspot gen` writes a
//! manifest next to every generated suite.
//!
//! The format is deliberately hand-rolled text (one `key value...` record
//! per line, `end` terminated) so diffs are reviewable and parsing has no
//! serde dependency.

use crate::dataset::{write_corner_labels, Dataset};
use crate::suite::BenchmarkData;
use hotspot_geometry::io::write_clips;
use hotspot_geometry::Clip;
use hotspot_nn::serialize::crc32;
use std::error::Error;
use std::fmt;

/// Manifest format version (the `hotspot-suite-manifest v<N>` header).
pub const MANIFEST_FORMAT: u32 = 1;

/// Content CRC of a single clip: CRC-32 over its text serialization (the
/// exact bytes [`write_clips`] emits for it).
pub fn clip_crc(clip: &Clip) -> u32 {
    let mut bytes = Vec::new();
    write_clips(&mut bytes, std::iter::once(clip)).expect("in-memory clip serialization");
    crc32(&bytes)
}

fn split_clips_crc(split: &Dataset) -> u32 {
    let mut bytes = Vec::new();
    write_clips(&mut bytes, split.iter().map(|s| &s.clip)).expect("in-memory clip serialization");
    crc32(&bytes)
}

fn split_labels_crc(split: &Dataset) -> u32 {
    // The exact bytes `hotspot gen` writes to `<split>.labels`.
    let labels: String = split
        .iter()
        .map(|s| if s.hotspot { "1\n" } else { "0\n" })
        .collect();
    crc32(labels.as_bytes())
}

fn split_corners_crc(split: &Dataset) -> Option<u32> {
    split.corner_schema()?;
    let labels: Vec<_> = split
        .iter()
        .map(|s| s.corners.clone().expect("uniform corner schema"))
        .collect();
    let mut bytes = Vec::new();
    write_corner_labels(&mut bytes, &labels).expect("in-memory corner serialization");
    Some(crc32(&bytes))
}

/// One split's entry in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitEntry {
    /// Split name (`train` / `test`).
    pub split: String,
    /// Sample count.
    pub count: usize,
    /// Hotspot count.
    pub hotspots: usize,
    /// CRC-32 of the split's clip file bytes.
    pub clips_crc: u32,
    /// CRC-32 of the split's boolean label file bytes.
    pub labels_crc: u32,
    /// CRC-32 of the split's corner-label file bytes, when the suite has a
    /// corner schema.
    pub corners_crc: Option<u32>,
}

/// One pattern family's entry in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyEntry {
    /// Family name ([`crate::patterns::PatternKind::name`]).
    pub family: String,
    /// Total draws from the family's stream.
    pub drawn: usize,
    /// Kept hotspot clips.
    pub kept_hs: usize,
    /// Kept non-hotspot clips.
    pub kept_nhs: usize,
    /// CRC-32 over the kept clips' content CRCs in draw order.
    pub crc: u32,
}

/// A parsed or freshly computed suite manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Suite name.
    pub name: String,
    /// Suite recipe version ([`crate::suite::SUITE_VERSION`] at build time).
    pub suite_version: u32,
    /// Master seed the suite regenerates from.
    pub seed: u64,
    /// Corner-grid schema string, or `None` for plain boolean labels.
    pub corner_schema: Option<String>,
    /// Split entries (train first).
    pub splits: Vec<SplitEntry>,
    /// Per-family entries, in mix order.
    pub families: Vec<FamilyEntry>,
    /// Augmented variants appended to the training split.
    pub augmented: usize,
    /// CRC-32 over the rendered manifest body (all lines above the
    /// `total-crc` record).
    pub total_crc: u32,
}

/// Manifest parse failures, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// A line was malformed or a required record missing.
    Malformed {
        /// 1-based line number (0 = whole document).
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The document's `total-crc` does not match its body.
    TotalCrcMismatch {
        /// CRC recorded in the document.
        recorded: u32,
        /// CRC of the body as parsed.
        computed: u32,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Malformed { line, reason } => {
                write!(f, "manifest line {line}: {reason}")
            }
            ManifestError::TotalCrcMismatch { recorded, computed } => write!(
                f,
                "manifest total-crc 0x{recorded:08x} does not match body crc 0x{computed:08x}"
            ),
        }
    }
}

impl Error for ManifestError {}

impl Manifest {
    /// Computes the manifest of a generated benchmark.
    pub fn from_data(data: &BenchmarkData) -> Manifest {
        let splits = [("train", &data.train), ("test", &data.test)]
            .into_iter()
            .map(|(name, split)| SplitEntry {
                split: name.to_string(),
                count: split.len(),
                hotspots: split.hotspot_count(),
                clips_crc: split_clips_crc(split),
                labels_crc: split_labels_crc(split),
                corners_crc: split_corners_crc(split),
            })
            .collect();
        let families = data
            .families
            .iter()
            .map(|f| FamilyEntry {
                family: f.kind.name().to_string(),
                drawn: f.drawn,
                kept_hs: f.kept_hs,
                kept_nhs: f.kept_nhs,
                crc: f.crc,
            })
            .collect();
        let mut m = Manifest {
            name: data.spec.name.clone(),
            suite_version: data.spec.version,
            seed: data.spec.seed,
            corner_schema: data.spec.corner_grid.as_ref().map(|g| g.schema()),
            splits,
            families,
            augmented: data.augmented,
            total_crc: 0,
        };
        m.total_crc = crc32(m.render_body().as_bytes());
        m
    }

    fn render_body(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("hotspot-suite-manifest v{MANIFEST_FORMAT}\n"));
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("suite-version {}\n", self.suite_version));
        out.push_str(&format!("seed {}\n", self.seed));
        match &self.corner_schema {
            Some(schema) => out.push_str(&format!("corner-schema {schema}\n")),
            None => out.push_str("corner-schema none\n"),
        }
        for s in &self.splits {
            out.push_str(&format!(
                "split {} count {} hotspots {} clips-crc {:08x} labels-crc {:08x}",
                s.split, s.count, s.hotspots, s.clips_crc, s.labels_crc
            ));
            if let Some(c) = s.corners_crc {
                out.push_str(&format!(" corners-crc {c:08x}"));
            }
            out.push('\n');
        }
        for f in &self.families {
            out.push_str(&format!(
                "family {} drawn {} kept-hs {} kept-nhs {} crc {:08x}\n",
                f.family, f.drawn, f.kept_hs, f.kept_nhs, f.crc
            ));
        }
        out.push_str(&format!("augmented {}\n", self.augmented));
        out
    }

    /// Renders the manifest as its canonical text document.
    pub fn render(&self) -> String {
        let mut out = self.render_body();
        out.push_str(&format!("total-crc {:08x}\n", self.total_crc));
        out.push_str("end\n");
        out
    }

    /// Parses a manifest document, verifying the `total-crc` record
    /// against the body.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Malformed`] with a 1-based line number on any
    /// structural problem; [`ManifestError::TotalCrcMismatch`] when the
    /// document was edited or truncated.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let bad = |line: usize, reason: &str| ManifestError::Malformed {
            line,
            reason: reason.to_string(),
        };
        let mut name = None;
        let mut suite_version = None;
        let mut seed = None;
        let mut corner_schema: Option<Option<String>> = None;
        let mut splits = Vec::new();
        let mut families = Vec::new();
        let mut augmented = None;
        let mut total_crc = None;
        let mut body = String::new();
        let mut saw_end = false;

        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            if saw_end {
                return Err(bad(lineno, "content after 'end'"));
            }
            let mut fields = line.split_whitespace();
            let key = fields.next().ok_or_else(|| bad(lineno, "empty line"))?;
            let is_tail = matches!(key, "total-crc" | "end");
            if !is_tail {
                body.push_str(line);
                body.push('\n');
            }
            match key {
                "hotspot-suite-manifest" => {
                    let v = fields
                        .next()
                        .ok_or_else(|| bad(lineno, "missing format version"))?;
                    if lineno != 1 {
                        return Err(bad(lineno, "header must be the first line"));
                    }
                    if v != format!("v{MANIFEST_FORMAT}") {
                        return Err(bad(lineno, &format!("unsupported format '{v}'")));
                    }
                }
                "name" => {
                    name = Some(
                        fields
                            .next()
                            .ok_or_else(|| bad(lineno, "missing name"))?
                            .to_string(),
                    );
                }
                "suite-version" => {
                    suite_version = Some(parse_field(&mut fields, lineno, "suite-version")?);
                }
                "seed" => {
                    seed = Some(parse_field(&mut fields, lineno, "seed")?);
                }
                "corner-schema" => {
                    let v = fields
                        .next()
                        .ok_or_else(|| bad(lineno, "missing corner schema"))?;
                    corner_schema = Some(if v == "none" {
                        None
                    } else {
                        Some(v.to_string())
                    });
                }
                "split" => {
                    let split = fields
                        .next()
                        .ok_or_else(|| bad(lineno, "missing split name"))?
                        .to_string();
                    let count = parse_kv(&mut fields, "count", lineno)?;
                    let hotspots = parse_kv(&mut fields, "hotspots", lineno)?;
                    let clips_crc = parse_kv_hex(&mut fields, "clips-crc", lineno)?;
                    let labels_crc = parse_kv_hex(&mut fields, "labels-crc", lineno)?;
                    let corners_crc = match fields.next() {
                        None => None,
                        Some("corners-crc") => Some(parse_hex(
                            fields
                                .next()
                                .ok_or_else(|| bad(lineno, "missing corners-crc value"))?,
                            lineno,
                        )?),
                        Some(other) => {
                            return Err(bad(lineno, &format!("unexpected field '{other}'")))
                        }
                    };
                    splits.push(SplitEntry {
                        split,
                        count,
                        hotspots,
                        clips_crc,
                        labels_crc,
                        corners_crc,
                    });
                }
                "family" => {
                    let family = fields
                        .next()
                        .ok_or_else(|| bad(lineno, "missing family name"))?
                        .to_string();
                    families.push(FamilyEntry {
                        family,
                        drawn: parse_kv(&mut fields, "drawn", lineno)?,
                        kept_hs: parse_kv(&mut fields, "kept-hs", lineno)?,
                        kept_nhs: parse_kv(&mut fields, "kept-nhs", lineno)?,
                        crc: parse_kv_hex(&mut fields, "crc", lineno)?,
                    });
                }
                "augmented" => {
                    augmented = Some(parse_field(&mut fields, lineno, "augmented")?);
                }
                "total-crc" => {
                    total_crc = Some(parse_hex(
                        fields
                            .next()
                            .ok_or_else(|| bad(lineno, "missing total-crc value"))?,
                        lineno,
                    )?);
                }
                "end" => saw_end = true,
                other => return Err(bad(lineno, &format!("unknown record '{other}'"))),
            }
        }
        if !saw_end {
            return Err(bad(0, "missing 'end' record"));
        }
        let recorded = total_crc.ok_or_else(|| bad(0, "missing 'total-crc' record"))?;
        let computed = crc32(body.as_bytes());
        if recorded != computed {
            return Err(ManifestError::TotalCrcMismatch { recorded, computed });
        }
        Ok(Manifest {
            name: name.ok_or_else(|| bad(0, "missing 'name' record"))?,
            suite_version: suite_version.ok_or_else(|| bad(0, "missing 'suite-version' record"))?
                as u32,
            seed: seed.ok_or_else(|| bad(0, "missing 'seed' record"))?,
            corner_schema: corner_schema.ok_or_else(|| bad(0, "missing 'corner-schema' record"))?,
            splits,
            families,
            augmented: augmented.ok_or_else(|| bad(0, "missing 'augmented' record"))? as usize,
            total_crc: recorded,
        })
    }
}

fn parse_field<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<u64, ManifestError> {
    fields
        .next()
        .ok_or_else(|| ManifestError::Malformed {
            line: lineno,
            reason: format!("missing {what} value"),
        })?
        .parse()
        .map_err(|_| ManifestError::Malformed {
            line: lineno,
            reason: format!("{what} is not an integer"),
        })
}

fn parse_kv<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    key: &str,
    lineno: usize,
) -> Result<usize, ManifestError> {
    expect_key(fields, key, lineno)?;
    Ok(parse_field(fields, lineno, key)? as usize)
}

fn parse_kv_hex<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    key: &str,
    lineno: usize,
) -> Result<u32, ManifestError> {
    expect_key(fields, key, lineno)?;
    let v = fields.next().ok_or_else(|| ManifestError::Malformed {
        line: lineno,
        reason: format!("missing {key} value"),
    })?;
    parse_hex(v, lineno)
}

fn expect_key<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    key: &str,
    lineno: usize,
) -> Result<(), ManifestError> {
    match fields.next() {
        Some(k) if k == key => Ok(()),
        other => Err(ManifestError::Malformed {
            line: lineno,
            reason: format!("expected '{key}', found {other:?}"),
        }),
    }
}

fn parse_hex(v: &str, lineno: usize) -> Result<u32, ManifestError> {
    u32::from_str_radix(v, 16).map_err(|_| ManifestError::Malformed {
        line: lineno,
        reason: format!("'{v}' is not a hex crc"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteSpec;
    use hotspot_litho::{LithoConfig, LithoSimulator};

    fn golden_data() -> BenchmarkData {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        SuiteSpec::golden_mini().build(&sim)
    }

    #[test]
    fn manifest_round_trips_through_text() {
        let m = Manifest::from_data(&golden_data());
        let text = m.render();
        let back = Manifest::parse(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_is_deterministic() {
        let a = Manifest::from_data(&golden_data());
        let b = Manifest::from_data(&golden_data());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn corner_suite_manifest_has_corner_records() {
        let m = Manifest::from_data(&golden_data());
        assert!(m.corner_schema.is_some());
        for s in &m.splits {
            assert!(
                s.corners_crc.is_some(),
                "{} split lacks corners-crc",
                s.split
            );
        }
        assert_eq!(m.splits[0].split, "train");
        assert!(m.augmented > 0, "golden suite should augment");
    }

    #[test]
    fn tampered_manifest_fails_crc() {
        let m = Manifest::from_data(&golden_data());
        // Changing any body byte (here the seed digits) breaks total-crc.
        let tampered = m.render().replacen("seed", "seed 9", 1);
        assert!(matches!(
            Manifest::parse(&tampered),
            Err(ManifestError::TotalCrcMismatch { .. })
        ));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Manifest::parse("hotspot-suite-manifest v1\nbogus record\nend\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = Manifest::parse("hotspot-suite-manifest v9\nend\n").unwrap_err();
        assert!(err.to_string().contains("unsupported format"), "{err}");
    }

    #[test]
    fn plain_suite_manifest_has_no_corner_records() {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let data = SuiteSpec::iccad(0.001).build(&sim);
        let m = Manifest::from_data(&data);
        assert_eq!(m.corner_schema, None);
        assert!(m.splits.iter().all(|s| s.corners_crc.is_none()));
        assert_eq!(m.augmented, 0);
        let text = m.render();
        assert_eq!(Manifest::parse(&text).unwrap(), m);
    }
}
