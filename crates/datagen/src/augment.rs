//! Label-preserving clip augmentation.
//!
//! The lithography oracle is invariant under the dihedral symmetries of
//! the square: its PSF is isotropic, the resist threshold is pointwise and
//! the morphology/guard-band checks use square structuring elements. A
//! rotated or mirrored clip therefore has *exactly* the same hotspot label
//! — so the eight dihedral variants of every training clip are free,
//! guaranteed-correct training data (the augmentation trick real hotspot
//! flows use).

use crate::dataset::{Dataset, Sample};
use hotspot_geometry::{Clip, GeometryError, Point, Rect};

/// The eight symmetries of the square (rotations × mirror).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symmetry {
    /// Identity.
    R0,
    /// 90° counter-clockwise rotation.
    R90,
    /// 180° rotation.
    R180,
    /// 270° counter-clockwise rotation.
    R270,
    /// Mirror about the vertical axis.
    MirrorX,
    /// Mirror about the horizontal axis.
    MirrorY,
    /// Mirror then 90° rotation (anti-diagonal transpose).
    MirrorR90,
    /// Mirror then 270° rotation (main-diagonal transpose).
    MirrorR270,
}

impl Symmetry {
    /// All eight symmetries, identity first.
    pub const ALL: [Symmetry; 8] = [
        Symmetry::R0,
        Symmetry::R90,
        Symmetry::R180,
        Symmetry::R270,
        Symmetry::MirrorX,
        Symmetry::MirrorY,
        Symmetry::MirrorR90,
        Symmetry::MirrorR270,
    ];

    /// Maps a point of an `side × side` window (origin at the window's low
    /// corner) under the symmetry.
    fn map_point(&self, p: Point, side: i64) -> Point {
        let (x, y) = (p.x, p.y);
        match self {
            Symmetry::R0 => Point::new(x, y),
            Symmetry::R90 => Point::new(y, side - x),
            Symmetry::R180 => Point::new(side - x, side - y),
            Symmetry::R270 => Point::new(side - y, x),
            Symmetry::MirrorX => Point::new(side - x, y),
            Symmetry::MirrorY => Point::new(x, side - y),
            Symmetry::MirrorR90 => Point::new(y, x),
            Symmetry::MirrorR270 => Point::new(side - y, side - x),
        }
    }
}

/// Applies a symmetry to a clip.
///
/// The clip is first normalised so its window sits at the origin; the
/// result has the same (square) window.
///
/// # Errors
///
/// Returns [`GeometryError::EmptyRect`] only if the window is not square —
/// dihedral symmetries of a rectangle would change its orientation.
pub fn transform_clip(clip: &Clip, symmetry: Symmetry) -> Result<Clip, GeometryError> {
    let normalized = clip.normalized();
    let window = normalized.window();
    if window.width() != window.height() {
        return Err(GeometryError::EmptyRect {
            lo: window.lo(),
            hi: window.hi(),
        });
    }
    let side = window.width();
    let mut out = Clip::new(window);
    for shape in normalized.shapes() {
        let a = symmetry.map_point(shape.lo(), side);
        let b = symmetry.map_point(shape.hi(), side);
        let lo = Point::new(a.x.min(b.x), a.y.min(b.y));
        let hi = Point::new(a.x.max(b.x), a.y.max(b.y));
        out.push(Rect::from_corners(lo, hi)?);
    }
    Ok(out)
}

/// All eight dihedral variants of a clip (identity included, first).
///
/// # Panics
///
/// Panics if the clip window is not square.
pub fn dihedral_variants(clip: &Clip) -> Vec<Clip> {
    Symmetry::ALL
        .iter()
        .map(|&s| transform_clip(clip, s).expect("square window"))
        .collect()
}

/// Expands a dataset with the dihedral variants of every sample, labels
/// copied (valid because the oracle is dihedral-invariant; see module
/// docs). The identity variant is the original sample, so the output is
/// exactly 8× the input.
///
/// # Panics
///
/// Panics if any clip window is not square.
pub fn augment_dataset(data: &Dataset) -> Dataset {
    data.iter()
        .flat_map(|sample| {
            dihedral_variants(&sample.clip)
                .into_iter()
                .map(move |clip| Sample {
                    clip,
                    hotspot: sample.hotspot,
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{self, PatternKind};
    use hotspot_litho::{LithoConfig, LithoSimulator};
    use rand::SeedableRng;

    fn asym_clip() -> Clip {
        let mut c = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
        c.push(Rect::new(100, 200, 300, 900).unwrap());
        c.push(Rect::new(700, 100, 1100, 250).unwrap());
        c
    }

    #[test]
    fn identity_is_identity() {
        let c = asym_clip();
        assert_eq!(transform_clip(&c, Symmetry::R0).unwrap(), c);
    }

    #[test]
    fn four_rotations_compose_to_identity() {
        let c = asym_clip();
        let mut t = c.clone();
        for _ in 0..4 {
            t = transform_clip(&t, Symmetry::R90).unwrap();
        }
        // Shape *sets* must match (order may differ).
        let mut a: Vec<_> = c.shapes().to_vec();
        let mut b: Vec<_> = t.shapes().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn mirrors_are_involutions() {
        let c = asym_clip();
        for s in [
            Symmetry::MirrorX,
            Symmetry::MirrorY,
            Symmetry::MirrorR90,
            Symmetry::MirrorR270,
        ] {
            let twice = transform_clip(&transform_clip(&c, s).unwrap(), s).unwrap();
            let mut a: Vec<_> = c.shapes().to_vec();
            let mut b: Vec<_> = twice.shapes().to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{s:?} twice is not identity");
        }
    }

    #[test]
    fn transforms_preserve_area_and_count() {
        let c = asym_clip();
        let area: i64 = c.shapes().iter().map(|r| r.area()).sum();
        for v in dihedral_variants(&c) {
            assert_eq!(v.shape_count(), c.shape_count());
            let va: i64 = v.shapes().iter().map(|r| r.area()).sum();
            assert_eq!(va, area);
            assert_eq!(v.window(), c.normalized().window());
        }
    }

    #[test]
    fn eight_variants_of_asymmetric_clip_are_distinct() {
        let variants = dihedral_variants(&asym_clip());
        assert_eq!(variants.len(), 8);
        for i in 0..8 {
            for j in (i + 1)..8 {
                let mut a: Vec<_> = variants[i].shapes().to_vec();
                let mut b: Vec<_> = variants[j].shapes().to_vec();
                a.sort();
                b.sort();
                assert_ne!(a, b, "variants {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn oracle_labels_are_dihedral_invariant() {
        // The augmentation's core guarantee, checked against the real
        // oracle on several archetypes.
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for kind in [
            PatternKind::LineTips,
            PatternKind::ContactArray,
            PatternKind::Jogs,
        ] {
            let clip = patterns::sample_pattern(kind, &mut rng);
            let label = sim.label_clip(&clip);
            for (i, v) in dihedral_variants(&clip).into_iter().enumerate() {
                assert_eq!(
                    sim.label_clip(&v),
                    label,
                    "{kind:?} variant {i} changed label"
                );
            }
        }
    }

    #[test]
    fn augment_dataset_multiplies_by_eight() {
        let mut data = Dataset::new();
        data.push(Sample {
            clip: asym_clip(),
            hotspot: true,
        });
        data.push(Sample {
            clip: asym_clip(),
            hotspot: false,
        });
        let aug = augment_dataset(&data);
        assert_eq!(aug.len(), 16);
        assert_eq!(aug.hotspot_count(), 8);
    }

    #[test]
    fn non_square_window_rejected() {
        let c = Clip::new(Rect::new(0, 0, 100, 200).unwrap());
        assert!(transform_clip(&c, Symmetry::R90).is_err());
    }
}
