//! Geometric clip augmentation: dihedral symmetries and ε-perturbation.
//!
//! The lithography oracle is invariant under the dihedral symmetries of
//! the square: its PSF is isotropic, the resist threshold is pointwise and
//! the morphology/guard-band checks use square structuring elements. A
//! rotated or mirrored **square** clip therefore has *exactly* the same
//! hotspot label — so the eight dihedral variants of every training clip
//! are free, guaranteed-correct training data (the augmentation trick real
//! hotspot flows use). [`augment_dataset`] exploits this shortcut.
//!
//! Two augmentations do **not** preserve labels and must re-simulate:
//!
//! - quarter-turn variants of a *non-square* clip swap the window's axes,
//!   so the variant cannot even live in the same dataset (the rasterised
//!   feature dimension changes);
//! - ε-perturbation ([`perturb_clip`]) jitters shape edges by a few grid
//!   steps, which deliberately walks marginal patterns across the
//!   hotspot decision boundary.
//!
//! [`augment_resimulated`] is the safe path for both: it validates the
//! window dimensions of every variant (dropping axis-swapping symmetries
//! of non-square clips) and labels each surviving variant with a fresh
//! oracle run instead of carrying the source label.

use crate::dataset::{Dataset, Sample};
use hotspot_geometry::{Clip, GeometryError, Point, Rect};
use hotspot_litho::LithoSimulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The eight symmetries of the square (rotations × mirror).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symmetry {
    /// Identity.
    R0,
    /// 90° counter-clockwise rotation.
    R90,
    /// 180° rotation.
    R180,
    /// 270° counter-clockwise rotation.
    R270,
    /// Mirror about the vertical axis.
    MirrorX,
    /// Mirror about the horizontal axis.
    MirrorY,
    /// Mirror then 90° rotation (anti-diagonal transpose).
    MirrorR90,
    /// Mirror then 270° rotation (main-diagonal transpose).
    MirrorR270,
}

impl Symmetry {
    /// All eight symmetries, identity first.
    pub const ALL: [Symmetry; 8] = [
        Symmetry::R0,
        Symmetry::R90,
        Symmetry::R180,
        Symmetry::R270,
        Symmetry::MirrorX,
        Symmetry::MirrorY,
        Symmetry::MirrorR90,
        Symmetry::MirrorR270,
    ];

    /// Whether the symmetry exchanges the window's width and height
    /// (quarter-turns and the two transposes). For a non-square window these
    /// variants cannot share a dataset with the original.
    pub fn swaps_axes(&self) -> bool {
        matches!(
            self,
            Symmetry::R90 | Symmetry::R270 | Symmetry::MirrorR90 | Symmetry::MirrorR270
        )
    }

    /// Maps a point of a `w × h` window (origin at the window's low corner)
    /// under the symmetry. Axis-swapping symmetries land in an `h × w`
    /// window.
    fn map_point(&self, p: Point, w: i64, h: i64) -> Point {
        let (x, y) = (p.x, p.y);
        match self {
            Symmetry::R0 => Point::new(x, y),
            Symmetry::R90 => Point::new(y, w - x),
            Symmetry::R180 => Point::new(w - x, h - y),
            Symmetry::R270 => Point::new(h - y, x),
            Symmetry::MirrorX => Point::new(w - x, y),
            Symmetry::MirrorY => Point::new(x, h - y),
            Symmetry::MirrorR90 => Point::new(y, x),
            Symmetry::MirrorR270 => Point::new(h - y, w - x),
        }
    }
}

/// Applies a symmetry to a clip.
///
/// The clip is first normalised so its window sits at the origin. Square
/// windows map onto themselves; for non-square windows, axis-swapping
/// symmetries ([`Symmetry::swaps_axes`]) produce a clip whose window has
/// width and height exchanged — callers that require a fixed window shape
/// must check the result's dimensions (as [`augment_resimulated`] does).
///
/// # Errors
///
/// Propagates [`GeometryError`] if a mapped shape degenerates, which cannot
/// happen for well-formed clips.
pub fn transform_clip(clip: &Clip, symmetry: Symmetry) -> Result<Clip, GeometryError> {
    let normalized = clip.normalized();
    let window = normalized.window();
    let (w, h) = (window.width(), window.height());
    let out_window = if symmetry.swaps_axes() {
        Rect::new(0, 0, h, w)?
    } else {
        window
    };
    let mut out = Clip::new(out_window);
    for shape in normalized.shapes() {
        let a = symmetry.map_point(shape.lo(), w, h);
        let b = symmetry.map_point(shape.hi(), w, h);
        let lo = Point::new(a.x.min(b.x), a.y.min(b.y));
        let hi = Point::new(a.x.max(b.x), a.y.max(b.y));
        out.push(Rect::from_corners(lo, hi)?);
    }
    Ok(out)
}

/// All eight dihedral variants of a clip (identity included, first). For a
/// non-square window, four of the variants have the window's axes swapped.
pub fn dihedral_variants(clip: &Clip) -> Vec<Clip> {
    Symmetry::ALL
        .iter()
        .map(|&s| transform_clip(clip, s).expect("well-formed clip transforms cleanly"))
        .collect()
}

/// Jitters every shape edge of a clip independently by a grid-snapped
/// offset in `[-eps_nm, eps_nm]`, clamped to the window. Degenerate results
/// (an edge crossing its opposite) keep the original shape. The window is
/// unchanged.
///
/// The perturbed clip's hotspot label is **not** the source clip's —
/// marginal patterns flip under even one grid step of jitter. Always
/// re-label through the oracle ([`augment_resimulated`] does).
pub fn perturb_clip(clip: &Clip, eps_nm: i64, rng: &mut StdRng) -> Clip {
    const GRID_NM: i64 = 10;
    let normalized = clip.normalized();
    let window = normalized.window();
    let steps = (eps_nm / GRID_NM).max(0);
    let mut out = Clip::new(window);
    for shape in normalized.shapes() {
        let mut jitter = || rng.gen_range(-steps..=steps) * GRID_NM;
        let lo = Point::new(
            (shape.lo().x + jitter()).clamp(window.lo().x, window.hi().x),
            (shape.lo().y + jitter()).clamp(window.lo().y, window.hi().y),
        );
        let hi = Point::new(
            (shape.hi().x + jitter()).clamp(window.lo().x, window.hi().x),
            (shape.hi().y + jitter()).clamp(window.lo().y, window.hi().y),
        );
        match Rect::new(lo.x, lo.y, hi.x, hi.y) {
            Ok(r) => out.push(r),
            Err(_) => out.push(*shape),
        };
    }
    out
}

/// Configuration for oracle-checked augmentation ([`augment_resimulated`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentConfig {
    /// Symmetries to apply (identity is skipped: the original sample is
    /// already in the dataset).
    pub symmetries: Vec<Symmetry>,
    /// ε-perturbed copies to draw per sample.
    pub perturbs: usize,
    /// Maximum per-edge jitter for perturbed copies, in nm (snapped to the
    /// 10 nm grid).
    pub eps_nm: i64,
    /// RNG seed for the perturbation stream.
    pub seed: u64,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            symmetries: Symmetry::ALL.to_vec(),
            perturbs: 1,
            eps_nm: 10,
            seed: 0x00A4_6E17,
        }
    }
}

/// Expands a dataset with the dihedral variants of every sample, labels
/// copied (valid because the oracle is dihedral-invariant on square
/// windows; see module docs). The identity variant is the original sample,
/// so the output is exactly 8× the input.
///
/// # Panics
///
/// Panics if any clip window is not square — the label-copy shortcut is
/// only sound there. Use [`augment_resimulated`] for non-square windows.
pub fn augment_dataset(data: &Dataset) -> Dataset {
    data.iter()
        .flat_map(|sample| {
            let window = sample.clip.window();
            assert_eq!(
                window.width(),
                window.height(),
                "augment_dataset requires square windows; use augment_resimulated"
            );
            dihedral_variants(&sample.clip)
                .into_iter()
                .map(move |clip| Sample::new(clip, sample.hotspot))
        })
        .collect()
}

/// Builds oracle-labelled augmented variants of every sample: the
/// configured symmetries plus ε-perturbed copies, each re-labelled by a
/// fresh simulator run — never by carrying the source label.
///
/// Returns only the *new* variants (the identity symmetry and the source
/// samples are excluded); merge the result into the training split. Window
/// dimensions are validated: axis-swapping symmetries of non-square clips
/// are dropped, so every returned sample has the source window shape. If
/// the input dataset carries per-corner labels, variants are corner-labelled
/// with the same simulator (which must then be configured with the matching
/// corner grid).
///
/// # Errors
///
/// Propagates [`GeometryError`] from degenerate shape transforms (cannot
/// happen for well-formed clips).
pub fn augment_resimulated(
    data: &Dataset,
    sim: &LithoSimulator,
    config: &AugmentConfig,
) -> Result<Dataset, GeometryError> {
    let with_corners = data.corner_schema().is_some();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Dataset::new();
    let label = |clip: Clip| {
        if with_corners {
            Sample::with_corners(clip.clone(), sim.corner_labels(&clip))
        } else {
            let hotspot = sim.label_clip(&clip);
            Sample::new(clip, hotspot)
        }
    };
    for sample in data.iter() {
        let window = sample.clip.window();
        let square = window.width() == window.height();
        for &sym in &config.symmetries {
            if sym == Symmetry::R0 || (!square && sym.swaps_axes()) {
                continue;
            }
            out.push(label(transform_clip(&sample.clip, sym)?));
        }
        for _ in 0..config.perturbs {
            out.push(label(perturb_clip(&sample.clip, config.eps_nm, &mut rng)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{self, PatternKind};
    use hotspot_litho::{LithoConfig, LithoSimulator};
    use rand::SeedableRng;

    fn asym_clip() -> Clip {
        let mut c = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
        c.push(Rect::new(100, 200, 300, 900).unwrap());
        c.push(Rect::new(700, 100, 1100, 250).unwrap());
        c
    }

    #[test]
    fn identity_is_identity() {
        let c = asym_clip();
        assert_eq!(transform_clip(&c, Symmetry::R0).unwrap(), c);
    }

    #[test]
    fn four_rotations_compose_to_identity() {
        let c = asym_clip();
        let mut t = c.clone();
        for _ in 0..4 {
            t = transform_clip(&t, Symmetry::R90).unwrap();
        }
        // Shape *sets* must match (order may differ).
        let mut a: Vec<_> = c.shapes().to_vec();
        let mut b: Vec<_> = t.shapes().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn mirrors_are_involutions() {
        let c = asym_clip();
        for s in [
            Symmetry::MirrorX,
            Symmetry::MirrorY,
            Symmetry::MirrorR90,
            Symmetry::MirrorR270,
        ] {
            let twice = transform_clip(&transform_clip(&c, s).unwrap(), s).unwrap();
            let mut a: Vec<_> = c.shapes().to_vec();
            let mut b: Vec<_> = twice.shapes().to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{s:?} twice is not identity");
        }
    }

    #[test]
    fn transforms_preserve_area_and_count() {
        let c = asym_clip();
        let area: i64 = c.shapes().iter().map(|r| r.area()).sum();
        for v in dihedral_variants(&c) {
            assert_eq!(v.shape_count(), c.shape_count());
            let va: i64 = v.shapes().iter().map(|r| r.area()).sum();
            assert_eq!(va, area);
            assert_eq!(v.window(), c.normalized().window());
        }
    }

    #[test]
    fn eight_variants_of_asymmetric_clip_are_distinct() {
        let variants = dihedral_variants(&asym_clip());
        assert_eq!(variants.len(), 8);
        for i in 0..8 {
            for j in (i + 1)..8 {
                let mut a: Vec<_> = variants[i].shapes().to_vec();
                let mut b: Vec<_> = variants[j].shapes().to_vec();
                a.sort();
                b.sort();
                assert_ne!(a, b, "variants {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn oracle_labels_are_dihedral_invariant() {
        // The augmentation's core guarantee, checked against the real
        // oracle on several archetypes.
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for kind in [
            PatternKind::LineTips,
            PatternKind::ContactArray,
            PatternKind::Jogs,
        ] {
            let clip = patterns::sample_pattern(kind, &mut rng);
            let label = sim.label_clip(&clip);
            for (i, v) in dihedral_variants(&clip).into_iter().enumerate() {
                assert_eq!(
                    sim.label_clip(&v),
                    label,
                    "{kind:?} variant {i} changed label"
                );
            }
        }
    }

    #[test]
    fn augment_dataset_multiplies_by_eight() {
        let mut data = Dataset::new();
        data.push(Sample::new(asym_clip(), true));
        data.push(Sample::new(asym_clip(), false));
        let aug = augment_dataset(&data);
        assert_eq!(aug.len(), 16);
        assert_eq!(aug.hotspot_count(), 8);
    }

    fn non_square_clip() -> Clip {
        let mut c = Clip::new(Rect::new(0, 0, 1200, 600).unwrap());
        c.push(Rect::new(100, 100, 400, 300).unwrap());
        c.push(Rect::new(800, 200, 1100, 500).unwrap());
        c
    }

    #[test]
    fn non_square_quarter_turn_swaps_window() {
        let c = non_square_clip();
        let t = transform_clip(&c, Symmetry::R90).unwrap();
        assert_eq!(t.window().width(), 600);
        assert_eq!(t.window().height(), 1200);
        assert_eq!(t.shape_count(), c.shape_count());
        let area: i64 = c.shapes().iter().map(|r| r.area()).sum();
        let ta: i64 = t.shapes().iter().map(|r| r.area()).sum();
        assert_eq!(ta, area);
        for r in t.shapes() {
            assert!(t.window().contains_rect(r), "{r:?} escaped the window");
        }
        // Four quarter-turns still compose to the identity.
        let mut back = c.clone();
        for _ in 0..4 {
            back = transform_clip(&back, Symmetry::R90).unwrap();
        }
        let mut a: Vec<_> = c.shapes().to_vec();
        let mut b: Vec<_> = back.shapes().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn non_square_axis_preserving_symmetries_keep_window() {
        let c = non_square_clip();
        for s in [Symmetry::R180, Symmetry::MirrorX, Symmetry::MirrorY] {
            let t = transform_clip(&c, s).unwrap();
            assert_eq!(t.window(), c.window(), "{s:?} changed the window");
        }
    }

    /// Satellite regression: augmentation of non-square clips must validate
    /// window dimensions and re-simulate labels instead of carrying the
    /// source label.
    #[test]
    fn resimulated_augment_validates_non_square_windows() {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let mut data = Dataset::new();
        let clip = non_square_clip();
        let label = sim.label_clip(&clip);
        data.push(Sample::new(clip.clone(), label));
        let aug = augment_resimulated(&data, &sim, &AugmentConfig::default()).unwrap();
        // 3 axis-preserving non-identity symmetries + 1 perturbation; the
        // 4 axis-swapping variants are dropped, not mangled.
        assert_eq!(aug.len(), 4);
        for s in aug.iter() {
            assert_eq!(s.clip.window(), clip.window());
            assert_eq!(
                sim.label_clip(&s.clip),
                s.hotspot,
                "stored label must come from re-simulation"
            );
        }
    }

    /// Satellite regression: a marginal clip's label flips under
    /// ε-perturbation, and the flipped (re-simulated) label — not the
    /// carried source label — is what lands in the augmented dataset.
    #[test]
    fn perturbation_flips_marginal_labels_and_resimulates() {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        // A dense line array right at the printability crossover: jittering
        // edges by ±20 nm walks it across the decision boundary.
        let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
        let (w, pitch) = (70, 140);
        let mut x = 60;
        while x + w <= 1140 {
            clip.push(Rect::new(x, 100, x + w, 1100).unwrap());
            x += pitch;
        }
        let source_label = sim.label_clip(&clip);

        let mut flipped = None;
        for seed in 0..64 {
            let config = AugmentConfig {
                symmetries: vec![],
                perturbs: 4,
                eps_nm: 20,
                seed,
            };
            let mut data = Dataset::new();
            data.push(Sample::new(clip.clone(), source_label));
            let aug = augment_resimulated(&data, &sim, &config).unwrap();
            for s in aug.iter() {
                assert_eq!(
                    sim.label_clip(&s.clip),
                    s.hotspot,
                    "stored label must come from re-simulation, not the source"
                );
                if s.hotspot != source_label {
                    flipped = Some(s.clone());
                }
            }
            if flipped.is_some() {
                break;
            }
        }
        let flipped = flipped.expect("some ε-perturbation flips the marginal label");
        assert_ne!(flipped.hotspot, source_label);
    }

    #[test]
    fn resimulated_augment_is_deterministic() {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let mut data = Dataset::new();
        data.push(Sample::new(asym_clip(), sim.label_clip(&asym_clip())));
        let config = AugmentConfig::default();
        let a = augment_resimulated(&data, &sim, &config).unwrap();
        let b = augment_resimulated(&data, &sim, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn resimulated_augment_carries_corner_labels() {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let mut data = Dataset::new();
        data.append_with_corners(vec![asym_clip()], vec![sim.corner_labels(&asym_clip())])
            .unwrap();
        let config = AugmentConfig {
            symmetries: vec![Symmetry::MirrorX],
            perturbs: 1,
            eps_nm: 10,
            seed: 3,
        };
        let aug = augment_resimulated(&data, &sim, &config).unwrap();
        assert_eq!(aug.len(), 2);
        assert_eq!(aug.corner_schema(), data.corner_schema());
        for s in aug.iter() {
            assert_eq!(
                s.corners.as_ref().unwrap(),
                &sim.corner_labels(&s.clip),
                "corner labels must be re-simulated"
            );
        }
    }

    #[test]
    fn perturb_zero_eps_is_identity() {
        let c = asym_clip();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(perturb_clip(&c, 0, &mut rng), c);
    }

    #[test]
    fn perturb_stays_in_window_and_on_grid() {
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 0..8 {
            let clip = patterns::sample_pattern(PatternKind::RandomRouting, &mut rng);
            let p = perturb_clip(&clip, 30, &mut StdRng::seed_from_u64(seed));
            assert_eq!(p.window(), clip.normalized().window());
            assert_eq!(p.shape_count(), clip.shape_count());
            for r in p.shapes() {
                assert!(p.window().contains_rect(r));
                assert_eq!(r.lo().x % 10, 0);
                assert_eq!(r.lo().y % 10, 0);
                assert_eq!(r.hi().x % 10, 0);
                assert_eq!(r.hi().y % 10, 0);
            }
        }
    }
}
