//! Labelled clip collections.

use hotspot_geometry::Clip;
use hotspot_litho::CornerLabels;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors from validated dataset growth ([`Dataset::append`] /
/// [`Dataset::merge`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Clip and label counts differ.
    LabelCountMismatch {
        /// Number of clips supplied.
        clips: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// An incoming clip's window dimensions differ from the dataset's,
    /// which would change the rasterised feature dimension mid-training.
    WindowMismatch {
        /// Existing window size (width, height) in nm.
        expected: (i64, i64),
        /// Offending clip's window size in nm.
        found: (i64, i64),
        /// Index of the offending incoming clip.
        index: usize,
    },
    /// An incoming sample's per-corner label schema differs from the
    /// dataset's — either a different corner count or a mix of corner-labelled
    /// and plain samples, which would corrupt a multi-corner training head.
    CornerSchemaMismatch {
        /// Existing corner count (`None` = plain boolean labels).
        expected: Option<usize>,
        /// Offending sample's corner count.
        found: Option<usize>,
        /// Index of the offending incoming sample.
        index: usize,
    },
}

fn schema_str(schema: Option<usize>) -> String {
    match schema {
        Some(n) => format!("{n} corners"),
        None => "plain labels".to_string(),
    }
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LabelCountMismatch { clips, labels } => {
                write!(f, "{clips} clips but {labels} labels")
            }
            DatasetError::WindowMismatch {
                expected,
                found,
                index,
            } => write!(
                f,
                "clip {index} window {}x{} nm differs from dataset window {}x{} nm",
                found.0, found.1, expected.0, expected.1
            ),
            DatasetError::CornerSchemaMismatch {
                expected,
                found,
                index,
            } => write!(
                f,
                "sample {index} has {} but the dataset has {}",
                schema_str(*found),
                schema_str(*expected)
            ),
        }
    }
}

impl Error for DatasetError {}

/// One labelled training/testing instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The layout clip.
    pub clip: Clip,
    /// Ground-truth label from the lithography oracle.
    pub hotspot: bool,
    /// Optional per-process-corner labels (present when the suite was
    /// generated over a [`hotspot_litho::CornerGrid`]). When set, `hotspot`
    /// is always `corners.is_hotspot()`.
    pub corners: Option<CornerLabels>,
}

impl Sample {
    /// A plain boolean-labelled sample.
    pub fn new(clip: Clip, hotspot: bool) -> Self {
        Sample {
            clip,
            hotspot,
            corners: None,
        }
    }

    /// A corner-labelled sample; the boolean label is derived from the
    /// corner labels (hotspot iff any corner fails).
    pub fn with_corners(clip: Clip, corners: CornerLabels) -> Self {
        Sample {
            clip,
            hotspot: corners.is_hotspot(),
            corners: Some(corners),
        }
    }

    /// Number of process corners labelled, or `None` for a plain sample.
    pub fn corner_schema(&self) -> Option<usize> {
        self.corners.as_ref().map(|c| c.len())
    }
}

/// An ordered collection of labelled clips.
///
/// # Examples
///
/// ```
/// use hotspot_datagen::{Dataset, Sample};
/// use hotspot_geometry::{Clip, Rect};
///
/// # fn main() -> Result<(), hotspot_geometry::GeometryError> {
/// let clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
/// let mut data = Dataset::new();
/// data.push(Sample::new(clip, true));
/// assert_eq!(data.hotspot_count(), 1);
/// assert_eq!(data.non_hotspot_count(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// All samples in order.
    #[inline]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of hotspot samples.
    pub fn hotspot_count(&self) -> usize {
        self.samples.iter().filter(|s| s.hotspot).count()
    }

    /// Number of non-hotspot samples.
    pub fn non_hotspot_count(&self) -> usize {
        self.len() - self.hotspot_count()
    }

    /// Hotspot fraction in `[0, 1]`; 0 for an empty dataset.
    pub fn hotspot_ratio(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.hotspot_count() as f64 / self.len() as f64
        }
    }

    /// Shuffles sample order in place.
    pub fn shuffle(&mut self, rng: &mut StdRng) {
        self.samples.shuffle(rng);
    }

    /// Splits off the last `fraction` of samples into a second dataset
    /// (e.g. the 25 % validation split of paper §4.2). Call after
    /// [`Dataset::shuffle`] for a random split.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction < 1.0`.
    pub fn split_tail(mut self, fraction: f64) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "split fraction must be in (0, 1), got {fraction}"
        );
        let tail_len = ((self.len() as f64) * fraction).round() as usize;
        let cut = self.len().saturating_sub(tail_len.max(1));
        let tail = self.samples.split_off(cut);
        (self, Dataset { samples: tail })
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Window dimensions (width, height) shared by existing samples, if any.
    fn window_dims(&self) -> Option<(i64, i64)> {
        self.samples
            .first()
            .map(|s| (s.clip.window().width(), s.clip.window().height()))
    }

    /// The per-corner label schema shared by the samples: `Some(n)` when
    /// every sample carries `n` corner labels, `None` when the dataset is
    /// empty or holds plain boolean labels. Validated growth
    /// ([`Dataset::append`] / [`Dataset::merge`]) keeps the schema uniform.
    pub fn corner_schema(&self) -> Option<usize> {
        self.samples.first().and_then(Sample::corner_schema)
    }

    fn check_schema(
        &self,
        incoming: impl Iterator<Item = Option<usize>>,
    ) -> Result<(), DatasetError> {
        if self.samples.is_empty() {
            // First batch fixes the schema; require internal consistency.
            let mut expected = None;
            for (index, found) in incoming.enumerate() {
                if index == 0 {
                    expected = found;
                } else if found != expected {
                    return Err(DatasetError::CornerSchemaMismatch {
                        expected,
                        found,
                        index,
                    });
                }
            }
            return Ok(());
        }
        let expected = self.corner_schema();
        for (index, found) in incoming.enumerate() {
            if found != expected {
                return Err(DatasetError::CornerSchemaMismatch {
                    expected,
                    found,
                    index,
                });
            }
        }
        Ok(())
    }

    /// Appends freshly labelled clips, validating that the label count
    /// matches and every clip window has the dataset's dimensions (a window
    /// mismatch would change the rasterised feature dimension mid-training).
    ///
    /// On error, the dataset is left unchanged.
    ///
    /// # Errors
    ///
    /// [`DatasetError::LabelCountMismatch`] when `clips.len() !=
    /// labels.len()`; [`DatasetError::WindowMismatch`] when a clip's window
    /// dimensions differ from the existing samples' (or, for an initially
    /// empty dataset, from the first incoming clip's);
    /// [`DatasetError::CornerSchemaMismatch`] when the dataset holds
    /// corner-labelled samples (plain boolean labels cannot be mixed in).
    pub fn append(&mut self, clips: Vec<Clip>, labels: &[bool]) -> Result<(), DatasetError> {
        if clips.len() != labels.len() {
            return Err(DatasetError::LabelCountMismatch {
                clips: clips.len(),
                labels: labels.len(),
            });
        }
        self.check_windows(&clips)?;
        self.check_schema(clips.iter().map(|_| None))?;
        self.samples.extend(
            clips
                .into_iter()
                .zip(labels.iter())
                .map(|(clip, &hotspot)| Sample::new(clip, hotspot)),
        );
        Ok(())
    }

    /// Appends corner-labelled clips with the same validation as
    /// [`Dataset::append`]; the boolean hotspot label of each sample is
    /// derived from its corner labels.
    ///
    /// # Errors
    ///
    /// As [`Dataset::append`], plus [`DatasetError::CornerSchemaMismatch`]
    /// when the corner counts differ among the incoming labels or from the
    /// dataset's existing schema.
    pub fn append_with_corners(
        &mut self,
        clips: Vec<Clip>,
        corners: Vec<CornerLabels>,
    ) -> Result<(), DatasetError> {
        if clips.len() != corners.len() {
            return Err(DatasetError::LabelCountMismatch {
                clips: clips.len(),
                labels: corners.len(),
            });
        }
        self.check_windows(&clips)?;
        self.check_schema(corners.iter().map(|c| Some(c.len())))?;
        self.samples.extend(
            clips
                .into_iter()
                .zip(corners)
                .map(|(clip, corners)| Sample::with_corners(clip, corners)),
        );
        Ok(())
    }

    fn check_windows(&self, clips: &[Clip]) -> Result<(), DatasetError> {
        let expected = self.window_dims().or_else(|| {
            clips
                .first()
                .map(|c| (c.window().width(), c.window().height()))
        });
        if let Some(expected) = expected {
            for (index, clip) in clips.iter().enumerate() {
                let found = (clip.window().width(), clip.window().height());
                if found != expected {
                    return Err(DatasetError::WindowMismatch {
                        expected,
                        found,
                        index,
                    });
                }
            }
        }
        Ok(())
    }

    /// Merges another dataset into this one with the same window validation
    /// as [`Dataset::append`]. On error, both datasets are unchanged.
    ///
    /// # Errors
    ///
    /// [`DatasetError::WindowMismatch`] when the incoming dataset's window
    /// dimensions differ from this one's;
    /// [`DatasetError::CornerSchemaMismatch`] when the corner-label schemas
    /// differ (corner-labelled and plain samples cannot be mixed, nor can
    /// two different corner counts).
    pub fn merge(&mut self, other: Dataset) -> Result<(), DatasetError> {
        if let Some(expected) = self.window_dims() {
            for (index, s) in other.samples.iter().enumerate() {
                let found = (s.clip.window().width(), s.clip.window().height());
                if found != expected {
                    return Err(DatasetError::WindowMismatch {
                        expected,
                        found,
                        index,
                    });
                }
            }
        }
        self.check_schema(other.samples.iter().map(Sample::corner_schema))?;
        self.samples.extend(other.samples);
        Ok(())
    }
}

/// Writes per-corner labels as text, one line per sample:
/// `<severity> <bits>` with one `0`/`1` character per corner in grid order,
/// e.g. `-3 01001`. The sidecar analogue of a `.labels` file for
/// corner-labelled suites; read back with [`read_corner_labels`].
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_corner_labels<W: Write>(w: &mut W, labels: &[CornerLabels]) -> io::Result<()> {
    for l in labels {
        let bits: String = l.fails.iter().map(|&f| if f { '1' } else { '0' }).collect();
        writeln!(w, "{} {}", l.severity, bits)?;
    }
    Ok(())
}

/// Reads corner labels written by [`write_corner_labels`]. Blank lines are
/// skipped; every other line must be `<severity> <bits>`.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] with a 1-based line number on malformed
/// lines, plus any underlying read error.
pub fn read_corner_labels<R: BufRead>(r: R) -> io::Result<Vec<CornerLabels>> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corner labels line {}: {what}: {line:?}", idx + 1),
            )
        };
        let (sev, bits) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| bad("expected '<severity> <bits>'"))?;
        let severity: i64 = sev.parse().map_err(|_| bad("severity is not an integer"))?;
        let bits = bits.trim();
        if bits.is_empty() {
            return Err(bad("empty corner bits"));
        }
        let fails = bits
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                _ => Err(bad("corner bits must be 0/1")),
            })
            .collect::<io::Result<Vec<bool>>>()?;
        out.push(CornerLabels { fails, severity });
    }
    Ok(out)
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        Dataset {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Sample> for Dataset {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl IntoIterator for Dataset {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geometry::Rect;
    use rand::SeedableRng;

    fn sample(hotspot: bool) -> Sample {
        Sample::new(Clip::new(Rect::new(0, 0, 100, 100).unwrap()), hotspot)
    }

    fn corners(fails: &[bool]) -> CornerLabels {
        let severity = if fails.iter().any(|&f| f) { 1 } else { -1 };
        CornerLabels {
            fails: fails.to_vec(),
            severity,
        }
    }

    fn dataset(hs: usize, nhs: usize) -> Dataset {
        let mut d = Dataset::new();
        for _ in 0..hs {
            d.push(sample(true));
        }
        for _ in 0..nhs {
            d.push(sample(false));
        }
        d
    }

    #[test]
    fn counts_and_ratio() {
        let d = dataset(3, 9);
        assert_eq!(d.len(), 12);
        assert_eq!(d.hotspot_count(), 3);
        assert_eq!(d.non_hotspot_count(), 9);
        assert!((d.hotspot_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(Dataset::new().hotspot_ratio(), 0.0);
    }

    #[test]
    fn split_tail_partitions() {
        let d = dataset(4, 12);
        let (head, tail) = d.split_tail(0.25);
        assert_eq!(head.len(), 12);
        assert_eq!(tail.len(), 4);
        assert_eq!(head.len() + tail.len(), 16);
    }

    #[test]
    #[should_panic(expected = "split fraction")]
    fn split_rejects_bad_fraction() {
        let _ = dataset(1, 1).split_tail(1.5);
    }

    #[test]
    fn shuffle_is_seeded() {
        let mut a = dataset(5, 5);
        let mut b = dataset(5, 5);
        a.shuffle(&mut StdRng::seed_from_u64(11));
        b.shuffle(&mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn collect_and_extend() {
        let d: Dataset = (0..4).map(|i| sample(i % 2 == 0)).collect();
        assert_eq!(d.len(), 4);
        let mut e = Dataset::new();
        e.extend(d.iter().cloned());
        assert_eq!(e.len(), 4);
    }

    fn clip(side: i64) -> Clip {
        Clip::new(Rect::new(0, 0, side, side).unwrap())
    }

    #[test]
    fn append_validates_label_count() {
        let mut d = dataset(1, 1);
        let before = d.clone();
        let err = d.append(vec![clip(100), clip(100)], &[true]).unwrap_err();
        assert_eq!(
            err,
            DatasetError::LabelCountMismatch {
                clips: 2,
                labels: 1
            }
        );
        assert_eq!(d, before, "failed append must not mutate");
    }

    #[test]
    fn append_validates_window_dims() {
        let mut d = dataset(1, 1); // 100×100 windows
        let before = d.clone();
        let err = d
            .append(vec![clip(100), clip(200)], &[true, false])
            .unwrap_err();
        assert_eq!(
            err,
            DatasetError::WindowMismatch {
                expected: (100, 100),
                found: (200, 200),
                index: 1,
            }
        );
        assert_eq!(d, before, "failed append must not mutate");
    }

    #[test]
    fn append_grows_in_order() {
        let mut d = dataset(1, 0);
        d.append(vec![clip(100), clip(100)], &[false, true])
            .unwrap();
        assert_eq!(d.len(), 3);
        assert!(!d.samples()[1].hotspot);
        assert!(d.samples()[2].hotspot);
    }

    #[test]
    fn append_to_empty_enforces_internal_consistency() {
        let mut d = Dataset::new();
        assert!(d
            .append(vec![clip(100), clip(200)], &[true, false])
            .is_err());
        assert!(d.is_empty());
        d.append(vec![clip(100), clip(100)], &[true, false])
            .unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn merge_validates_window_dims() {
        let mut d = dataset(2, 2);
        let mut other = Dataset::new();
        other.push(Sample::new(clip(300), true));
        assert!(matches!(
            d.merge(other).unwrap_err(),
            DatasetError::WindowMismatch { .. }
        ));
        assert_eq!(d.len(), 4);

        let ok = dataset(1, 1);
        d.merge(ok).unwrap();
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn with_corners_derives_hotspot() {
        let s = Sample::with_corners(clip(100), corners(&[false, true, false]));
        assert!(s.hotspot);
        assert_eq!(s.corner_schema(), Some(3));
        let s = Sample::with_corners(clip(100), corners(&[false, false]));
        assert!(!s.hotspot);
    }

    #[test]
    fn append_with_corners_sets_schema() {
        let mut d = Dataset::new();
        d.append_with_corners(
            vec![clip(100), clip(100)],
            vec![corners(&[true, false]), corners(&[false, false])],
        )
        .unwrap();
        assert_eq!(d.corner_schema(), Some(2));
        assert_eq!(d.hotspot_count(), 1);
    }

    #[test]
    fn merge_rejects_mixed_corner_schemas() {
        // Plain into corner-labelled.
        let mut d = Dataset::new();
        d.append_with_corners(vec![clip(100)], vec![corners(&[true, false])])
            .unwrap();
        let err = d.merge(dataset(1, 0)).unwrap_err();
        assert_eq!(
            err,
            DatasetError::CornerSchemaMismatch {
                expected: Some(2),
                found: None,
                index: 0,
            }
        );
        assert_eq!(d.len(), 1, "failed merge must not mutate");

        // Different corner counts.
        let mut other = Dataset::new();
        other
            .append_with_corners(vec![clip(100)], vec![corners(&[true, false, true])])
            .unwrap();
        assert!(matches!(
            d.merge(other).unwrap_err(),
            DatasetError::CornerSchemaMismatch {
                expected: Some(2),
                found: Some(3),
                ..
            }
        ));

        // Corner-labelled into plain.
        let mut plain = dataset(1, 1);
        let mut labelled = Dataset::new();
        labelled
            .append_with_corners(vec![clip(100)], vec![corners(&[true])])
            .unwrap();
        assert!(matches!(
            plain.merge(labelled).unwrap_err(),
            DatasetError::CornerSchemaMismatch {
                expected: None,
                found: Some(1),
                ..
            }
        ));
    }

    #[test]
    fn append_plain_rejects_corner_labelled_dataset() {
        let mut d = Dataset::new();
        d.append_with_corners(vec![clip(100)], vec![corners(&[true, false])])
            .unwrap();
        assert!(matches!(
            d.append(vec![clip(100)], &[true]).unwrap_err(),
            DatasetError::CornerSchemaMismatch { .. }
        ));
    }

    #[test]
    fn append_with_corners_requires_uniform_counts() {
        let mut d = Dataset::new();
        assert!(matches!(
            d.append_with_corners(
                vec![clip(100), clip(100)],
                vec![corners(&[true]), corners(&[true, false])],
            )
            .unwrap_err(),
            DatasetError::CornerSchemaMismatch {
                expected: Some(1),
                found: Some(2),
                index: 1,
            }
        ));
        assert!(d.is_empty());
    }

    #[test]
    fn corner_labels_round_trip_through_text() {
        let labels = vec![
            CornerLabels {
                fails: vec![false, true, false, false, true],
                severity: 7,
            },
            CornerLabels {
                fails: vec![false; 5],
                severity: -12,
            },
        ];
        let mut buf = Vec::new();
        write_corner_labels(&mut buf, &labels).unwrap();
        let back = read_corner_labels(&buf[..]).unwrap();
        assert_eq!(back, labels);
    }

    #[test]
    fn corner_label_parse_errors_carry_line_numbers() {
        let cases = [
            ("1 01\nnot-a-line\n", "line 2"),
            ("x 01\n", "line 1"),
            ("3 012\n", "line 1"),
            ("3\n", "line 1"),
        ];
        for (input, want) in cases {
            let err = read_corner_labels(input.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains(want),
                "{input:?} -> {err} (expected {want})"
            );
        }
    }
}
