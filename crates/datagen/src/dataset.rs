//! Labelled clip collections.

use hotspot_geometry::Clip;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from validated dataset growth ([`Dataset::append`] /
/// [`Dataset::merge`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Clip and label counts differ.
    LabelCountMismatch {
        /// Number of clips supplied.
        clips: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// An incoming clip's window dimensions differ from the dataset's,
    /// which would change the rasterised feature dimension mid-training.
    WindowMismatch {
        /// Existing window size (width, height) in nm.
        expected: (i64, i64),
        /// Offending clip's window size in nm.
        found: (i64, i64),
        /// Index of the offending incoming clip.
        index: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LabelCountMismatch { clips, labels } => {
                write!(f, "{clips} clips but {labels} labels")
            }
            DatasetError::WindowMismatch {
                expected,
                found,
                index,
            } => write!(
                f,
                "clip {index} window {}x{} nm differs from dataset window {}x{} nm",
                found.0, found.1, expected.0, expected.1
            ),
        }
    }
}

impl Error for DatasetError {}

/// One labelled training/testing instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The layout clip.
    pub clip: Clip,
    /// Ground-truth label from the lithography oracle.
    pub hotspot: bool,
}

/// An ordered collection of labelled clips.
///
/// # Examples
///
/// ```
/// use hotspot_datagen::{Dataset, Sample};
/// use hotspot_geometry::{Clip, Rect};
///
/// # fn main() -> Result<(), hotspot_geometry::GeometryError> {
/// let clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
/// let mut data = Dataset::new();
/// data.push(Sample { clip, hotspot: true });
/// assert_eq!(data.hotspot_count(), 1);
/// assert_eq!(data.non_hotspot_count(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// All samples in order.
    #[inline]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of hotspot samples.
    pub fn hotspot_count(&self) -> usize {
        self.samples.iter().filter(|s| s.hotspot).count()
    }

    /// Number of non-hotspot samples.
    pub fn non_hotspot_count(&self) -> usize {
        self.len() - self.hotspot_count()
    }

    /// Hotspot fraction in `[0, 1]`; 0 for an empty dataset.
    pub fn hotspot_ratio(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.hotspot_count() as f64 / self.len() as f64
        }
    }

    /// Shuffles sample order in place.
    pub fn shuffle(&mut self, rng: &mut StdRng) {
        self.samples.shuffle(rng);
    }

    /// Splits off the last `fraction` of samples into a second dataset
    /// (e.g. the 25 % validation split of paper §4.2). Call after
    /// [`Dataset::shuffle`] for a random split.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction < 1.0`.
    pub fn split_tail(mut self, fraction: f64) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "split fraction must be in (0, 1), got {fraction}"
        );
        let tail_len = ((self.len() as f64) * fraction).round() as usize;
        let cut = self.len().saturating_sub(tail_len.max(1));
        let tail = self.samples.split_off(cut);
        (self, Dataset { samples: tail })
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Window dimensions (width, height) shared by existing samples, if any.
    fn window_dims(&self) -> Option<(i64, i64)> {
        self.samples
            .first()
            .map(|s| (s.clip.window().width(), s.clip.window().height()))
    }

    /// Appends freshly labelled clips, validating that the label count
    /// matches and every clip window has the dataset's dimensions (a window
    /// mismatch would change the rasterised feature dimension mid-training).
    ///
    /// On error, the dataset is left unchanged.
    ///
    /// # Errors
    ///
    /// [`DatasetError::LabelCountMismatch`] when `clips.len() !=
    /// labels.len()`; [`DatasetError::WindowMismatch`] when a clip's window
    /// dimensions differ from the existing samples' (or, for an initially
    /// empty dataset, from the first incoming clip's).
    pub fn append(&mut self, clips: Vec<Clip>, labels: &[bool]) -> Result<(), DatasetError> {
        if clips.len() != labels.len() {
            return Err(DatasetError::LabelCountMismatch {
                clips: clips.len(),
                labels: labels.len(),
            });
        }
        let expected = self.window_dims().or_else(|| {
            clips
                .first()
                .map(|c| (c.window().width(), c.window().height()))
        });
        if let Some(expected) = expected {
            for (index, clip) in clips.iter().enumerate() {
                let found = (clip.window().width(), clip.window().height());
                if found != expected {
                    return Err(DatasetError::WindowMismatch {
                        expected,
                        found,
                        index,
                    });
                }
            }
        }
        self.samples.extend(
            clips
                .into_iter()
                .zip(labels.iter())
                .map(|(clip, &hotspot)| Sample { clip, hotspot }),
        );
        Ok(())
    }

    /// Merges another dataset into this one with the same window validation
    /// as [`Dataset::append`]. On error, both datasets are unchanged.
    ///
    /// # Errors
    ///
    /// [`DatasetError::WindowMismatch`] when the incoming dataset's window
    /// dimensions differ from this one's.
    pub fn merge(&mut self, other: Dataset) -> Result<(), DatasetError> {
        if let Some(expected) = self.window_dims() {
            for (index, s) in other.samples.iter().enumerate() {
                let found = (s.clip.window().width(), s.clip.window().height());
                if found != expected {
                    return Err(DatasetError::WindowMismatch {
                        expected,
                        found,
                        index,
                    });
                }
            }
        }
        self.samples.extend(other.samples);
        Ok(())
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        Dataset {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Sample> for Dataset {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl IntoIterator for Dataset {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geometry::Rect;
    use rand::SeedableRng;

    fn sample(hotspot: bool) -> Sample {
        Sample {
            clip: Clip::new(Rect::new(0, 0, 100, 100).unwrap()),
            hotspot,
        }
    }

    fn dataset(hs: usize, nhs: usize) -> Dataset {
        let mut d = Dataset::new();
        for _ in 0..hs {
            d.push(sample(true));
        }
        for _ in 0..nhs {
            d.push(sample(false));
        }
        d
    }

    #[test]
    fn counts_and_ratio() {
        let d = dataset(3, 9);
        assert_eq!(d.len(), 12);
        assert_eq!(d.hotspot_count(), 3);
        assert_eq!(d.non_hotspot_count(), 9);
        assert!((d.hotspot_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(Dataset::new().hotspot_ratio(), 0.0);
    }

    #[test]
    fn split_tail_partitions() {
        let d = dataset(4, 12);
        let (head, tail) = d.split_tail(0.25);
        assert_eq!(head.len(), 12);
        assert_eq!(tail.len(), 4);
        assert_eq!(head.len() + tail.len(), 16);
    }

    #[test]
    #[should_panic(expected = "split fraction")]
    fn split_rejects_bad_fraction() {
        let _ = dataset(1, 1).split_tail(1.5);
    }

    #[test]
    fn shuffle_is_seeded() {
        let mut a = dataset(5, 5);
        let mut b = dataset(5, 5);
        a.shuffle(&mut StdRng::seed_from_u64(11));
        b.shuffle(&mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn collect_and_extend() {
        let d: Dataset = (0..4).map(|i| sample(i % 2 == 0)).collect();
        assert_eq!(d.len(), 4);
        let mut e = Dataset::new();
        e.extend(d.iter().cloned());
        assert_eq!(e.len(), 4);
    }

    fn clip(side: i64) -> Clip {
        Clip::new(Rect::new(0, 0, side, side).unwrap())
    }

    #[test]
    fn append_validates_label_count() {
        let mut d = dataset(1, 1);
        let before = d.clone();
        let err = d.append(vec![clip(100), clip(100)], &[true]).unwrap_err();
        assert_eq!(
            err,
            DatasetError::LabelCountMismatch {
                clips: 2,
                labels: 1
            }
        );
        assert_eq!(d, before, "failed append must not mutate");
    }

    #[test]
    fn append_validates_window_dims() {
        let mut d = dataset(1, 1); // 100×100 windows
        let before = d.clone();
        let err = d
            .append(vec![clip(100), clip(200)], &[true, false])
            .unwrap_err();
        assert_eq!(
            err,
            DatasetError::WindowMismatch {
                expected: (100, 100),
                found: (200, 200),
                index: 1,
            }
        );
        assert_eq!(d, before, "failed append must not mutate");
    }

    #[test]
    fn append_grows_in_order() {
        let mut d = dataset(1, 0);
        d.append(vec![clip(100), clip(100)], &[false, true])
            .unwrap();
        assert_eq!(d.len(), 3);
        assert!(!d.samples()[1].hotspot);
        assert!(d.samples()[2].hotspot);
    }

    #[test]
    fn append_to_empty_enforces_internal_consistency() {
        let mut d = Dataset::new();
        assert!(d
            .append(vec![clip(100), clip(200)], &[true, false])
            .is_err());
        assert!(d.is_empty());
        d.append(vec![clip(100), clip(100)], &[true, false])
            .unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn merge_validates_window_dims() {
        let mut d = dataset(2, 2);
        let mut other = Dataset::new();
        other.push(Sample {
            clip: clip(300),
            hotspot: true,
        });
        assert!(matches!(
            d.merge(other).unwrap_err(),
            DatasetError::WindowMismatch { .. }
        ));
        assert_eq!(d.len(), 4);

        let ok = dataset(1, 1);
        d.merge(ok).unwrap();
        assert_eq!(d.len(), 6);
    }
}
