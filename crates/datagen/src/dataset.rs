//! Labelled clip collections.

use hotspot_geometry::Clip;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// One labelled training/testing instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The layout clip.
    pub clip: Clip,
    /// Ground-truth label from the lithography oracle.
    pub hotspot: bool,
}

/// An ordered collection of labelled clips.
///
/// # Examples
///
/// ```
/// use hotspot_datagen::{Dataset, Sample};
/// use hotspot_geometry::{Clip, Rect};
///
/// # fn main() -> Result<(), hotspot_geometry::GeometryError> {
/// let clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
/// let mut data = Dataset::new();
/// data.push(Sample { clip, hotspot: true });
/// assert_eq!(data.hotspot_count(), 1);
/// assert_eq!(data.non_hotspot_count(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// All samples in order.
    #[inline]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of hotspot samples.
    pub fn hotspot_count(&self) -> usize {
        self.samples.iter().filter(|s| s.hotspot).count()
    }

    /// Number of non-hotspot samples.
    pub fn non_hotspot_count(&self) -> usize {
        self.len() - self.hotspot_count()
    }

    /// Hotspot fraction in `[0, 1]`; 0 for an empty dataset.
    pub fn hotspot_ratio(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.hotspot_count() as f64 / self.len() as f64
        }
    }

    /// Shuffles sample order in place.
    pub fn shuffle(&mut self, rng: &mut StdRng) {
        self.samples.shuffle(rng);
    }

    /// Splits off the last `fraction` of samples into a second dataset
    /// (e.g. the 25 % validation split of paper §4.2). Call after
    /// [`Dataset::shuffle`] for a random split.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction < 1.0`.
    pub fn split_tail(mut self, fraction: f64) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "split fraction must be in (0, 1), got {fraction}"
        );
        let tail_len = ((self.len() as f64) * fraction).round() as usize;
        let cut = self.len().saturating_sub(tail_len.max(1));
        let tail = self.samples.split_off(cut);
        (self, Dataset { samples: tail })
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        Dataset {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Sample> for Dataset {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl IntoIterator for Dataset {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geometry::Rect;
    use rand::SeedableRng;

    fn sample(hotspot: bool) -> Sample {
        Sample {
            clip: Clip::new(Rect::new(0, 0, 100, 100).unwrap()),
            hotspot,
        }
    }

    fn dataset(hs: usize, nhs: usize) -> Dataset {
        let mut d = Dataset::new();
        for _ in 0..hs {
            d.push(sample(true));
        }
        for _ in 0..nhs {
            d.push(sample(false));
        }
        d
    }

    #[test]
    fn counts_and_ratio() {
        let d = dataset(3, 9);
        assert_eq!(d.len(), 12);
        assert_eq!(d.hotspot_count(), 3);
        assert_eq!(d.non_hotspot_count(), 9);
        assert!((d.hotspot_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(Dataset::new().hotspot_ratio(), 0.0);
    }

    #[test]
    fn split_tail_partitions() {
        let d = dataset(4, 12);
        let (head, tail) = d.split_tail(0.25);
        assert_eq!(head.len(), 12);
        assert_eq!(tail.len(), 4);
        assert_eq!(head.len() + tail.len(), 16);
    }

    #[test]
    #[should_panic(expected = "split fraction")]
    fn split_rejects_bad_fraction() {
        let _ = dataset(1, 1).split_tail(1.5);
    }

    #[test]
    fn shuffle_is_seeded() {
        let mut a = dataset(5, 5);
        let mut b = dataset(5, 5);
        a.shuffle(&mut StdRng::seed_from_u64(11));
        b.shuffle(&mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn collect_and_extend() {
        let d: Dataset = (0..4).map(|i| sample(i % 2 == 0)).collect();
        assert_eq!(d.len(), 4);
        let mut e = Dataset::new();
        e.extend(d.iter().cloned());
        assert_eq!(e.len(), 4);
    }
}
