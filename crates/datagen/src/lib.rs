//! Benchmark-suite substrate: deterministic synthetic layout benchmarks.
//!
//! The paper evaluates on the ICCAD-2012 contest benchmarks and three
//! proprietary industrial benchmarks, none of which can ship with this
//! reproduction. This crate substitutes deterministic synthetic equivalents:
//!
//! - [`patterns`] draws Manhattan layout clips from seven archetype families
//!   (line/space arrays, line tips, tip-to-tip gaps, contact arrays, jogs,
//!   random routing, isolated blocks) whose parameters straddle the
//!   resolution limit of the [`hotspot_litho`] oracle, so each family yields
//!   a mixture of hotspots and non-hotspots with a geometry-dependent
//!   decision boundary — the structure a hotspot detector must learn.
//! - [`suite`] assembles labelled train/test datasets whose class ratios
//!   match the paper's Table 2 benchmarks (`ICCAD`, `Industry1`–`Industry3`)
//!   at a configurable scale.
//! - [`dataset`] holds labelled clips with summary statistics and splitting
//!   helpers.
//!
//! [`augment`] adds the eight dihedral variants of every clip — provably
//! label-preserving under the isotropic lithography oracle — as free extra
//! training data.
//!
//! Everything is seeded: the same [`suite::SuiteSpec`] always regenerates
//! the identical benchmark.
//!
//! # Examples
//!
//! ```
//! use hotspot_datagen::suite::SuiteSpec;
//! use hotspot_litho::{LithoConfig, LithoSimulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sim = LithoSimulator::new(LithoConfig::default())?;
//! // A miniature ICCAD-like benchmark: 1 % of the paper's size.
//! let spec = SuiteSpec::iccad(0.01);
//! let data = spec.build(&sim);
//! assert_eq!(data.train.hotspot_count(), spec.train_hs);
//! assert_eq!(data.test.non_hotspot_count(), spec.test_nhs);
//! # Ok(())
//! # }
//! ```

pub mod augment;
pub mod dataset;
pub mod layout;
pub mod manifest;
pub mod patterns;
pub mod pool;
pub mod suite;

pub use augment::{AugmentConfig, Symmetry};
pub use dataset::{read_corner_labels, write_corner_labels, Dataset, DatasetError, Sample};
pub use layout::LayoutSpec;
pub use manifest::{Manifest, ManifestError};
pub use patterns::PatternKind;
pub use pool::ClipPool;
pub use suite::{BenchmarkData, FamilyStats, SuiteSpec};
