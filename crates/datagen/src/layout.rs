//! Multi-window layout generation for full-layout scanning.
//!
//! The pattern generators in [`crate::patterns`] emit isolated
//! 1200×1200 nm clips — the unit the DAC'17 paper classifies. Deployment,
//! however, scans *layouts*: regions many windows wide where consecutive
//! windows share most of their geometry. [`LayoutSpec`] tiles seeded
//! pattern samples into one large [`Clip`] so the scan engine in
//! `hotspot-core` has a deterministic, arbitrarily large workload to
//! stride over.

use crate::patterns::{self, PatternKind, CLIP_SIDE_NM};
use hotspot_geometry::{Clip, Point, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded recipe for a `tiles_x × tiles_y` layout of pattern tiles.
///
/// Each tile is one [`patterns::sample_from_mix`] draw translated to its
/// tile origin, so the layout window spans
/// `tiles_x·1200 × tiles_y·1200` nm. The same spec always regenerates the
/// identical layout.
///
/// # Examples
///
/// ```
/// use hotspot_datagen::layout::LayoutSpec;
///
/// let layout = LayoutSpec::uniform(3, 2, 7).build();
/// assert_eq!(layout.window().width(), 3 * 1200);
/// assert_eq!(layout.window().height(), 2 * 1200);
/// assert!(!layout.is_blank());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutSpec {
    /// Tiles along x.
    pub tiles_x: usize,
    /// Tiles along y.
    pub tiles_y: usize,
    /// Pattern-family mixture passed to [`patterns::sample_from_mix`].
    pub mix: Vec<(PatternKind, f64)>,
    /// RNG seed; the layout is a pure function of the spec.
    pub seed: u64,
}

impl LayoutSpec {
    /// A spec drawing uniformly from every pattern family.
    pub fn uniform(tiles_x: usize, tiles_y: usize, seed: u64) -> Self {
        LayoutSpec {
            tiles_x,
            tiles_y,
            mix: PatternKind::ALL.iter().map(|&k| (k, 1.0)).collect(),
            seed,
        }
    }

    /// Layout window width in nm (`tiles_x · 1200`).
    pub fn width_nm(&self) -> i64 {
        self.tiles_x as i64 * CLIP_SIDE_NM
    }

    /// Layout window height in nm (`tiles_y · 1200`).
    pub fn height_nm(&self) -> i64 {
        self.tiles_y as i64 * CLIP_SIDE_NM
    }

    /// Generates the layout clip.
    ///
    /// Tiles are drawn row-major (y-major, x-minor) from a single RNG
    /// stream seeded by `seed`; each tile's shapes are translated by its
    /// tile origin before insertion.
    ///
    /// # Panics
    ///
    /// Panics when either tile count is zero or the mixture is empty.
    pub fn build(&self) -> Clip {
        assert!(
            self.tiles_x > 0 && self.tiles_y > 0,
            "layout needs at least one tile per axis"
        );
        assert!(!self.mix.is_empty(), "layout pattern mix must be nonempty");
        let window = Rect::new(0, 0, self.width_nm(), self.height_nm())
            .expect("positive tile counts give a valid window");
        let mut layout = Clip::new(window);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for ty in 0..self.tiles_y {
            for tx in 0..self.tiles_x {
                let tile = patterns::sample_from_mix(&self.mix, &mut rng);
                let origin = Point::new(tx as i64 * CLIP_SIDE_NM, ty as i64 * CLIP_SIDE_NM);
                for shape in tile.shapes() {
                    layout.push(shape.translated(origin));
                }
            }
        }
        layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_deterministic() {
        let spec = LayoutSpec::uniform(2, 3, 41);
        assert_eq!(spec.build(), spec.build());
        let other = LayoutSpec::uniform(2, 3, 42);
        assert_ne!(spec.build(), other.build());
    }

    #[test]
    fn window_spans_all_tiles() {
        let layout = LayoutSpec::uniform(4, 2, 1).build();
        assert_eq!(layout.window(), Rect::new(0, 0, 4800, 2400).unwrap());
    }

    #[test]
    fn every_tile_gets_geometry() {
        let (tiles_x, tiles_y) = (3, 3);
        let layout = LayoutSpec::uniform(tiles_x, tiles_y, 9).build();
        for ty in 0..tiles_y as i64 {
            for tx in 0..tiles_x as i64 {
                let tile = Rect::from_size(
                    Point::new(tx * CLIP_SIDE_NM, ty * CLIP_SIDE_NM),
                    CLIP_SIDE_NM,
                    CLIP_SIDE_NM,
                )
                .unwrap();
                assert!(
                    layout
                        .shapes()
                        .iter()
                        .any(|s| s.intersection(&tile).is_some()),
                    "tile ({tx},{ty}) is empty"
                );
            }
        }
    }

    #[test]
    fn density_stays_plausible() {
        let layout = LayoutSpec::uniform(3, 3, 5).build();
        let d = layout.density();
        assert!(d > 0.01 && d < 0.95, "layout density {d} out of range");
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tiles_rejected() {
        let _ = LayoutSpec::uniform(0, 2, 0).build();
    }
}
