//! Archetype pattern generators.
//!
//! Each generator samples a clip whose printability depends on the sampled
//! geometry parameters. Parameter ranges are calibrated against the
//! [`hotspot_litho`] oracle's default configuration (σ = 30 nm, 20 nm EPE
//! margin), where approximate failure crossovers sit at:
//!
//! | archetype        | fails when                  |
//! |------------------|-----------------------------|
//! | line/space array | half-pitch ≲ 65 nm          |
//! | line tips        | line width ≲ 90 nm          |
//! | contact array    | contact side ≲ 90 nm        |
//! | jogs             | wire width ≲ 80 nm          |
//! | T-junctions      | stem width/pitch ≲ 80 nm    |
//! | dense vias       | via side ≲ 90 nm staggered  |
//! | redistribution   | narrow-line gap ≲ 70 nm     |
//! | serpentine       | meander half-pitch ≲ 65 nm  |
//!
//! Sampling ranges straddle these crossovers so every family contributes
//! both classes and the label is a nontrivial function of the geometry.

use hotspot_geometry::{Clip, Rect};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Clip window side used throughout the suite, in nm (the paper's clips are
/// 1200×1200 nm²).
pub const CLIP_SIDE_NM: i64 = 1200;

/// The archetype families the generators draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Full-height line/space array (dense-pitch failure mode).
    LineArray,
    /// Line array whose lines terminate mid-clip (line-end pullback mode).
    LineTips,
    /// Facing line-end pairs with a tip-to-tip gap (bridging mode).
    TipToTip,
    /// Regular contact/via array (corner-rounding and necking mode).
    ContactArray,
    /// L/Z-shaped routing jogs (inner-corner mode).
    Jogs,
    /// Random mixed routing: several wires of varied width and pitch.
    RandomRouting,
    /// Large isolated shapes; prints robustly (mostly non-hotspot filler).
    Isolated,
    /// A routing rail with perpendicular stems meeting it (T/L junctions).
    TJunctions,
    /// Staggered dense via array (checkerboard rows, tighter pitch than
    /// [`PatternKind::ContactArray`]).
    DenseVias,
    /// Redistribution-style wide+narrow mix: a wide bus flanked by narrow
    /// runners at an aggressive gap.
    Redistribution,
    /// Serpentine meander wire (connected line array; test-structure
    /// topology).
    Serpentine,
}

impl PatternKind {
    /// All archetypes, in a fixed order (new families appended so older
    /// mixes keep their indices).
    pub const ALL: [PatternKind; 11] = [
        PatternKind::LineArray,
        PatternKind::LineTips,
        PatternKind::TipToTip,
        PatternKind::ContactArray,
        PatternKind::Jogs,
        PatternKind::RandomRouting,
        PatternKind::Isolated,
        PatternKind::TJunctions,
        PatternKind::DenseVias,
        PatternKind::Redistribution,
        PatternKind::Serpentine,
    ];

    /// The topology-aware families added by the suite subsystem.
    pub const TOPOLOGY: [PatternKind; 4] = [
        PatternKind::TJunctions,
        PatternKind::DenseVias,
        PatternKind::Redistribution,
        PatternKind::Serpentine,
    ];

    /// Stable manifest name of the archetype.
    pub fn name(&self) -> &'static str {
        match self {
            PatternKind::LineArray => "line_array",
            PatternKind::LineTips => "line_tips",
            PatternKind::TipToTip => "tip_to_tip",
            PatternKind::ContactArray => "contact_array",
            PatternKind::Jogs => "jogs",
            PatternKind::RandomRouting => "random_routing",
            PatternKind::Isolated => "isolated",
            PatternKind::TJunctions => "t_junctions",
            PatternKind::DenseVias => "dense_vias",
            PatternKind::Redistribution => "redistribution",
            PatternKind::Serpentine => "serpentine",
        }
    }

    /// Parses a manifest name back to the archetype.
    pub fn from_name(name: &str) -> Option<PatternKind> {
        PatternKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

fn window() -> Rect {
    Rect::new(0, 0, CLIP_SIDE_NM, CLIP_SIDE_NM).expect("static window")
}

/// Snaps a value to the 10 nm manufacturing grid used by the litho raster.
fn snap(v: i64) -> i64 {
    (v / 10) * 10
}

/// Samples a clip of the given archetype.
///
/// The returned clip always has at least one shape; geometry is clamped to
/// the 1200×1200 nm window.
///
/// # Examples
///
/// ```
/// use hotspot_datagen::{patterns, PatternKind};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let clip = patterns::sample_pattern(PatternKind::LineArray, &mut rng);
/// assert!(!clip.is_blank());
/// ```
pub fn sample_pattern(kind: PatternKind, rng: &mut StdRng) -> Clip {
    match kind {
        PatternKind::LineArray => line_array(rng),
        PatternKind::LineTips => line_tips(rng),
        PatternKind::TipToTip => tip_to_tip(rng),
        PatternKind::ContactArray => contact_array(rng),
        PatternKind::Jogs => jogs(rng),
        PatternKind::RandomRouting => random_routing(rng),
        PatternKind::Isolated => isolated(rng),
        PatternKind::TJunctions => t_junctions(rng),
        PatternKind::DenseVias => dense_vias(rng),
        PatternKind::Redistribution => redistribution(rng),
        PatternKind::Serpentine => serpentine(rng),
    }
}

/// Samples an archetype from a weighted mix, then a clip of that archetype.
///
/// # Panics
///
/// Panics if `mix` is empty or all weights are zero.
pub fn sample_from_mix(mix: &[(PatternKind, f64)], rng: &mut StdRng) -> Clip {
    let total: f64 = mix.iter().map(|&(_, w)| w).sum();
    assert!(total > 0.0, "pattern mix must have positive total weight");
    let mut draw = rng.gen_range(0.0..total);
    for &(kind, w) in mix {
        if draw < w {
            return sample_pattern(kind, rng);
        }
        draw -= w;
    }
    sample_pattern(mix.last().expect("non-empty mix").0, rng)
}

/// Horizontal/vertical full-height line/space array.
fn line_array(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let width = snap(rng.gen_range(50..=140));
    let space = snap((width as f64 * rng.gen_range(0.8..=1.6)) as i64).max(50);
    let offset = snap(rng.gen_range(0..width + space));
    let vertical = rng.gen_bool(0.5);
    let mut pos = offset - (width + space);
    while pos < CLIP_SIDE_NM {
        let lo = pos.max(0);
        let hi = (pos + width).min(CLIP_SIDE_NM);
        if hi - lo >= 30 {
            let r = if vertical {
                Rect::new(lo, 0, hi, CLIP_SIDE_NM)
            } else {
                Rect::new(0, lo, CLIP_SIDE_NM, hi)
            };
            clip.push(r.expect("validated extent"));
        }
        pos += width + space;
    }
    ensure_nonblank(clip, rng)
}

/// Line array whose lines end inside the analysis region.
fn line_tips(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let width = snap(rng.gen_range(50..=160));
    let pitch = width + snap((width as f64 * rng.gen_range(1.0..=1.8)) as i64);
    let tip_y = snap(rng.gen_range(450..=750));
    let from_top = rng.gen_bool(0.5);
    let mut x = snap(rng.gen_range(40..pitch.max(41)));
    while x + width <= CLIP_SIDE_NM {
        let r = if from_top {
            Rect::new(x, tip_y, x + width, CLIP_SIDE_NM)
        } else {
            Rect::new(x, 0, x + width, tip_y)
        };
        clip.push(r.expect("validated extent"));
        x += pitch;
    }
    ensure_nonblank(clip, rng)
}

/// Facing line-end pairs separated by a tip-to-tip gap.
fn tip_to_tip(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let width = snap(rng.gen_range(60..=140));
    // Half-gap is snapped so tip edges stay on the 10 nm grid.
    let half_gap = snap(rng.gen_range(30..=130));
    let pitch = width + snap((width as f64 * rng.gen_range(1.2..=2.0)) as i64);
    let mid = snap(rng.gen_range(500..=700));
    let mut x = snap(rng.gen_range(40..pitch.max(41)));
    while x + width <= CLIP_SIDE_NM {
        clip.push(Rect::new(x, 0, x + width, mid - half_gap).expect("validated extent"));
        clip.push(Rect::new(x, mid + half_gap, x + width, CLIP_SIDE_NM).expect("validated extent"));
        x += pitch;
    }
    ensure_nonblank(clip, rng)
}

/// Regular contact/via array.
fn contact_array(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let side = snap(rng.gen_range(60..=150));
    let pitch = side + snap((side as f64 * rng.gen_range(0.9..=1.6)) as i64);
    let x0 = snap(rng.gen_range(60..=60 + pitch));
    let y0 = snap(rng.gen_range(60..=60 + pitch));
    let mut y = y0;
    while y + side <= CLIP_SIDE_NM - 40 {
        let mut x = x0;
        while x + side <= CLIP_SIDE_NM - 40 {
            clip.push(Rect::new(x, y, x + side, y + side).expect("validated extent"));
            x += pitch;
        }
        y += pitch;
    }
    ensure_nonblank(clip, rng)
}

/// A couple of L/Z-shaped routing jogs.
fn jogs(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let count = rng.gen_range(1..=3);
    for _ in 0..count {
        let w = snap(rng.gen_range(50..=140));
        let x0 = snap(rng.gen_range(100..=500));
        let y0 = snap(rng.gen_range(300..=800));
        let run = snap(rng.gen_range(300..=600));
        let rise = snap(rng.gen_range(200..=400));
        // Horizontal segment then vertical segment (an L); sometimes a
        // second horizontal to make a Z.
        clip.push(Rect::new(x0, y0, x0 + run, y0 + w).expect("validated extent"));
        clip.push(Rect::new(x0 + run - w, y0, x0 + run, y0 + rise).expect("validated extent"));
        if rng.gen_bool(0.5) {
            clip.push(
                Rect::new(x0 + run - w, y0 + rise - w, x0 + run + run / 2, y0 + rise)
                    .expect("validated extent"),
            );
        }
    }
    ensure_nonblank(clip, rng)
}

/// Random mixed routing: parallel wires of varied width plus crossing stubs.
fn random_routing(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let tracks = rng.gen_range(3..=7);
    let vertical = rng.gen_bool(0.5);
    let mut pos: i64 = snap(rng.gen_range(40..=160));
    for _ in 0..tracks {
        let w = snap(rng.gen_range(50..=150));
        let space = snap(rng.gen_range(60..=220));
        if pos + w > CLIP_SIDE_NM {
            break;
        }
        // Wires sometimes span the window, sometimes stop short (a tip).
        let (lo, hi) = if rng.gen_bool(0.7) {
            (0, CLIP_SIDE_NM)
        } else {
            let a = snap(rng.gen_range(0..=400));
            let b = snap(rng.gen_range(700..=CLIP_SIDE_NM));
            (a, b)
        };
        let r = if vertical {
            Rect::new(pos, lo, pos + w, hi)
        } else {
            Rect::new(lo, pos, hi, pos + w)
        };
        clip.push(r.expect("validated extent"));
        pos += w + space;
    }
    ensure_nonblank(clip, rng)
}

/// Large isolated shapes that print robustly.
fn isolated(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let w = snap(rng.gen_range(200..=700));
    let h = snap(rng.gen_range(200..=700));
    let x0 = snap(rng.gen_range(100..=CLIP_SIDE_NM - 100 - w.min(CLIP_SIDE_NM - 200)));
    let y0 = snap(rng.gen_range(100..=CLIP_SIDE_NM - 100 - h.min(CLIP_SIDE_NM - 200)));
    clip.push(Rect::new(x0, y0, x0 + w, y0 + h).expect("validated extent"));
    if rng.gen_bool(0.4) {
        // A wide companion line far away.
        let lw = snap(rng.gen_range(120..=200));
        let lx = snap(rng.gen_range(0..=CLIP_SIDE_NM - lw));
        clip.push(Rect::new(lx, 0, lx + lw, CLIP_SIDE_NM).expect("validated extent"));
    }
    clip
}

/// A horizontal rail with perpendicular stems meeting it from below —
/// every meeting point is a T (or L, at the rail ends) junction. Stem tips
/// hang free on the far side, so the family mixes junction bridging with
/// line-end pullback.
fn t_junctions(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let rail_w = snap(rng.gen_range(60..=160));
    let rail_y = snap(rng.gen_range(500..=700));
    let stem_w = snap(rng.gen_range(50..=140));
    let pitch = stem_w + snap((stem_w as f64 * rng.gen_range(0.7..=3.5)) as i64).max(50);
    let stem_len = snap(rng.gen_range(250..=450));
    let horizontal_rail = rng.gen_bool(0.5);
    let push_rotated = |clip: &mut Clip, r: Rect| {
        // One generator serves both orientations: swap axes for the
        // vertical-rail variant.
        let rect = if horizontal_rail {
            r
        } else {
            Rect::new(r.lo().y, r.lo().x, r.hi().y, r.hi().x).expect("axis swap keeps extents")
        };
        clip.push(rect);
    };
    push_rotated(
        &mut clip,
        Rect::new(0, rail_y, CLIP_SIDE_NM, rail_y + rail_w).expect("validated extent"),
    );
    let mut x = snap(rng.gen_range(40..pitch.max(41)));
    while x + stem_w <= CLIP_SIDE_NM - 40 {
        push_rotated(
            &mut clip,
            Rect::new(x, rail_y - stem_len, x + stem_w, rail_y).expect("validated extent"),
        );
        x += pitch;
    }
    ensure_nonblank(clip, rng)
}

/// Staggered dense via array: rows offset by half a pitch (checkerboard),
/// packed tighter than [`contact_array`]. Diagonal neighbours are the
/// failure mode — corner-to-corner bridging at small side/pitch.
fn dense_vias(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let side = snap(rng.gen_range(60..=140));
    let pitch = side + snap((side as f64 * rng.gen_range(0.6..=1.3)) as i64).max(40);
    let x0 = snap(rng.gen_range(60..=60 + pitch));
    let y0 = snap(rng.gen_range(60..=60 + pitch));
    let mut y = y0;
    let mut row = 0i64;
    while y + side <= CLIP_SIDE_NM - 40 {
        let offset = if row % 2 == 1 { snap(pitch / 2) } else { 0 };
        let mut x = x0 + offset;
        while x + side <= CLIP_SIDE_NM - 40 {
            clip.push(Rect::new(x, y, x + side, y + side).expect("validated extent"));
            x += pitch;
        }
        y += pitch;
        row += 1;
    }
    ensure_nonblank(clip, rng)
}

/// Redistribution-style wide+narrow mix: a wide bus with narrow runner
/// lines alongside at an aggressive gap. The wide shape floods its
/// surroundings with intensity, so the narrow runners bridge into it when
/// the gap or the runner width shrinks.
fn redistribution(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let bus_w = snap(rng.gen_range(250..=450));
    let bus_x = snap(rng.gen_range(100..=400));
    let vertical = rng.gen_bool(0.5);
    let push_oriented = |clip: &mut Clip, r: Rect| {
        let rect = if vertical {
            r
        } else {
            Rect::new(r.lo().y, r.lo().x, r.hi().y, r.hi().x).expect("axis swap keeps extents")
        };
        clip.push(rect);
    };
    push_oriented(
        &mut clip,
        Rect::new(bus_x, 0, bus_x + bus_w, CLIP_SIDE_NM).expect("validated extent"),
    );
    let runners = rng.gen_range(2..=4);
    let mut x = bus_x + bus_w + snap(rng.gen_range(50..=200));
    for _ in 0..runners {
        let w = snap(rng.gen_range(50..=130));
        if x + w > CLIP_SIDE_NM {
            break;
        }
        push_oriented(
            &mut clip,
            Rect::new(x, 0, x + w, CLIP_SIDE_NM).expect("validated extent"),
        );
        x += w + snap(rng.gen_range(50..=200));
    }
    ensure_nonblank(clip, rng)
}

/// Serpentine meander: horizontal runs at a fixed vertical pitch joined
/// alternately at the left/right ends — a connected line array whose turns
/// add inner corners to the dense-pitch failure mode.
fn serpentine(rng: &mut StdRng) -> Clip {
    let mut clip = Clip::new(window());
    let w = snap(rng.gen_range(50..=160));
    let gap = snap((w as f64 * rng.gen_range(0.8..=3.0)) as i64).max(50);
    let pitch = w + gap;
    let x_lo = snap(rng.gen_range(100..=250));
    let x_hi = snap(rng.gen_range(950..=1100));
    let mut y = snap(rng.gen_range(100..=100 + pitch));
    let mut runs = Vec::new();
    while y + w <= CLIP_SIDE_NM - 100 {
        runs.push(y);
        y += pitch;
    }
    for (i, &ry) in runs.iter().enumerate() {
        clip.push(Rect::new(x_lo, ry, x_hi, ry + w).expect("validated extent"));
        if i + 1 < runs.len() {
            // Join to the next run: right end on even runs, left on odd.
            let (jx_lo, jx_hi) = if i % 2 == 0 {
                (x_hi - w, x_hi)
            } else {
                (x_lo, x_lo + w)
            };
            clip.push(Rect::new(jx_lo, ry + w, jx_hi, runs[i + 1]).expect("validated extent"));
        }
    }
    ensure_nonblank(clip, rng)
}

/// Guarantees at least one shape (degenerate parameter draws can produce an
/// empty clip; fall back to a safe isolated block).
fn ensure_nonblank(clip: Clip, rng: &mut StdRng) -> Clip {
    if clip.is_blank() {
        isolated(rng)
    } else {
        clip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn all_archetypes_produce_shapes() {
        for kind in PatternKind::ALL {
            for seed in 0..20 {
                let clip = sample_pattern(kind, &mut rng(seed));
                assert!(
                    !clip.is_blank(),
                    "{kind:?} seed {seed} produced a blank clip"
                );
                assert_eq!(clip.window().width(), CLIP_SIDE_NM);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in PatternKind::ALL {
            let a = sample_pattern(kind, &mut rng(42));
            let b = sample_pattern(kind, &mut rng(42));
            assert_eq!(a, b, "{kind:?} not deterministic");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = sample_pattern(PatternKind::LineArray, &mut rng(1));
        let b = sample_pattern(PatternKind::LineArray, &mut rng(2));
        assert_ne!(a, b);
    }

    #[test]
    fn shapes_are_grid_snapped_and_in_window() {
        for kind in PatternKind::ALL {
            let clip = sample_pattern(kind, &mut rng(9));
            for r in clip.shapes() {
                assert_eq!(r.lo().x % 10, 0);
                assert_eq!(r.lo().y % 10, 0);
                assert!(clip.window().contains_rect(r));
            }
        }
    }

    #[test]
    fn mix_sampling_respects_weights() {
        // Weight zero on everything except Isolated must always produce
        // a clip (indirectly: the draw never panics and clips are valid).
        let mix = [(PatternKind::Isolated, 1.0)];
        let mut r = rng(3);
        for _ in 0..10 {
            let c = sample_from_mix(&mix, &mut r);
            assert!(!c.is_blank());
        }
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn empty_mix_panics() {
        let _ = sample_from_mix(&[], &mut rng(0));
    }

    #[test]
    fn names_round_trip() {
        for kind in PatternKind::ALL {
            assert_eq!(
                PatternKind::from_name(kind.name()),
                Some(kind),
                "{kind:?} name round-trip"
            );
        }
        assert_eq!(PatternKind::from_name("no_such_family"), None);
    }

    #[test]
    fn topology_families_straddle_both_classes() {
        // Calibration: each new topology family must yield hotspots AND
        // non-hotspots under the default oracle, else the suite quota-fill
        // loop starves.
        let sim = hotspot_litho::LithoSimulator::new(hotspot_litho::LithoConfig::default())
            .expect("default litho config");
        for kind in PatternKind::TOPOLOGY {
            let mut hs = 0usize;
            let mut nhs = 0usize;
            for seed in 0..40 {
                let clip = sample_pattern(kind, &mut rng(7000 + seed));
                if sim.analyze_clip(&clip).is_hotspot() {
                    hs += 1;
                } else {
                    nhs += 1;
                }
                if hs > 0 && nhs > 0 {
                    break;
                }
            }
            assert!(hs > 0, "{kind:?} produced no hotspots in 40 draws");
            assert!(nhs > 0, "{kind:?} produced no non-hotspots in 40 draws");
        }
    }

    #[test]
    fn densities_are_plausible() {
        // Layout clips should be sparse-to-moderate density, not empty, not
        // solid.
        for kind in PatternKind::ALL {
            for seed in 0..10 {
                let clip = sample_pattern(kind, &mut rng(100 + seed));
                let d = clip.density();
                assert!(d > 0.005 && d < 0.95, "{kind:?} density {d}");
            }
        }
    }
}
