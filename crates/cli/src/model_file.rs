//! Self-describing model files.
//!
//! Layout: a UTF-8 header of `key value` lines terminated by a blank line,
//! followed by the binary parameter blob of
//! [`hotspot_nn::serialize::ParameterBlob::to_bytes`]:
//!
//! ```text
//! hsmodel 1
//! resolution_nm 10
//! grid 12
//! k 32
//!
//! <binary parameters>
//! ```
//!
//! The header carries everything needed to rebuild the feature pipeline
//! and CNN before loading weights, so a model file is usable without any
//! out-of-band configuration.

use crate::CliError;
use hotspot_core::model::CnnConfig;
use hotspot_core::FeaturePipeline;
use hotspot_nn::serialize::ParameterBlob;
use hotspot_nn::Network;

/// Everything needed to reconstruct a trained detector.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelFile {
    /// Feature-pipeline geometry.
    pub resolution_nm: u32,
    /// Block grid dimension `n`.
    pub grid: usize,
    /// Coefficients per block `k` (CNN input channels).
    pub k: usize,
    /// Flat trained parameters.
    pub blob: ParameterBlob,
}

impl ModelFile {
    /// Serialises header + parameters.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "hsmodel 1\nresolution_nm {}\ngrid {}\nk {}\n\n",
            self.resolution_nm, self.grid, self.k
        )
        .into_bytes();
        out.extend_from_slice(&self.blob.to_bytes());
        out
    }

    /// Parses bytes produced by [`ModelFile::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CliError::ModelFormat`] on a malformed header or
    /// parameter blob.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CliError> {
        let header_end = find_blank_line(data)
            .ok_or_else(|| CliError::ModelFormat("missing header terminator".into()))?;
        let header = std::str::from_utf8(&data[..header_end])
            .map_err(|_| CliError::ModelFormat("header is not UTF-8".into()))?;
        let mut resolution_nm = None;
        let mut grid = None;
        let mut k = None;
        let mut magic_ok = false;
        for line in header.lines() {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("hsmodel"), Some("1")) => magic_ok = true,
                (Some("resolution_nm"), Some(v)) => resolution_nm = v.parse().ok(),
                (Some("grid"), Some(v)) => grid = v.parse().ok(),
                (Some("k"), Some(v)) => k = v.parse().ok(),
                (Some(other), _) => {
                    return Err(CliError::ModelFormat(format!(
                        "unknown header key '{other}'"
                    )))
                }
                _ => {}
            }
        }
        if !magic_ok {
            return Err(CliError::ModelFormat("bad magic / version".into()));
        }
        let blob = ParameterBlob::from_bytes(&data[header_end + 1..])
            .map_err(|e| CliError::ModelFormat(format!("parameter blob: {e}")))?;
        Ok(ModelFile {
            resolution_nm: resolution_nm
                .ok_or_else(|| CliError::ModelFormat("missing resolution_nm".into()))?,
            grid: grid.ok_or_else(|| CliError::ModelFormat("missing grid".into()))?,
            k: k.ok_or_else(|| CliError::ModelFormat("missing k".into()))?,
            blob,
        })
    }

    /// Rebuilds the feature pipeline this model expects.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::ModelFormat`] for impossible header geometry.
    pub fn pipeline(&self) -> Result<FeaturePipeline, CliError> {
        FeaturePipeline::new(self.resolution_nm, self.grid, self.k)
            .map_err(|e| CliError::ModelFormat(format!("invalid pipeline in header: {e}")))
    }

    /// Rebuilds the network architecture and loads the stored weights.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::ModelFormat`] when the blob does not match the
    /// declared architecture.
    pub fn network(&self) -> Result<Network, CliError> {
        let cnn = CnnConfig {
            input_grid: self.grid,
            input_channels: self.k,
            ..CnnConfig::default()
        };
        let mut net = cnn.build();
        self.blob
            .load_into(&mut net)
            .map_err(|e| CliError::ModelFormat(format!("weights do not fit architecture: {e}")))?;
        Ok(net)
    }
}

fn find_blank_line(data: &[u8]) -> Option<usize> {
    // Header is small; scan for "\n\n".
    data.windows(2)
        .position(|w| w == b"\n\n")
        .map(|idx| idx + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelFile {
        let cnn = CnnConfig {
            input_grid: 12,
            input_channels: 4,
            ..CnnConfig::default()
        };
        let mut net = cnn.build();
        ModelFile {
            resolution_nm: 10,
            grid: 12,
            k: 4,
            blob: ParameterBlob::from_network(&mut net),
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = ModelFile::from_bytes(&bytes).unwrap();
        assert_eq!(m, back);
        // Network rebuild works and predicts identically.
        let mut a = m.network().unwrap();
        let mut b = back.network().unwrap();
        let x = hotspot_nn::Tensor::zeros(vec![4, 12, 12]);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn rejects_corruption() {
        let m = sample();
        let bytes = m.to_bytes();
        assert!(ModelFile::from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ModelFile::from_bytes(&bad).is_err());
        // Truncated blob.
        assert!(ModelFile::from_bytes(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn mismatched_architecture_rejected() {
        let mut m = sample();
        m.k = 8; // header no longer matches the stored blob size
        let bytes = m.to_bytes();
        let parsed = ModelFile::from_bytes(&bytes).unwrap();
        assert!(parsed.network().is_err());
    }

    #[test]
    fn pipeline_matches_header() {
        let m = sample();
        let p = m.pipeline().unwrap();
        assert_eq!(p.resolution_nm(), 10);
        assert_eq!(p.grid_dim(), 12);
        assert_eq!(p.coefficients(), 4);
    }
}
