//! Model-file format re-export.
//!
//! The `hsmodel` format moved into [`hotspot_core::model_file`] so the
//! CLI and the serve daemon load models through one code path; this
//! module keeps the CLI's historical import path working. Decode errors
//! are [`hotspot_core::CoreError::Model`], which converts into
//! [`crate::CliError`] via `?` like every other core error.

pub use hotspot_core::model_file::{ModelFile, VERSION};
