//! The `hotspot` subcommands, exposed as functions so tests can drive them
//! without spawning processes. Each returns the text it would print.

use crate::model_file::ModelFile;
use crate::CliError;
use hotspot_bench::ExperimentArgs;
use hotspot_core::api::{ClipSpec, Json, PredictRequest, ReloadRequest, Request, ScanRequest};
use hotspot_core::biased::CheckpointEvent;
use hotspot_core::checkpoint::write_atomic;
use hotspot_core::detector::{DetectorConfig, HotspotDetector};
use hotspot_core::metrics::EvalResult;
use hotspot_core::{
    ActiveConfig, CascadeConfig, CascadePrefilter, Checkpoint, CoreError, FeaturePipeline,
    Parallelism, RunIdentity, ScanConfig,
};
use hotspot_datagen::suite::SuiteSpec;
use hotspot_datagen::{ClipPool, Dataset, LayoutSpec, Manifest, PatternKind, Sample};
use hotspot_geometry::io::{read_clips, write_clips};
use hotspot_geometry::Clip;
use hotspot_litho::{LithoConfig, LithoLabeler, LithoSimulator};
use hotspot_nn::serialize::ParameterBlob;
use hotspot_server::{client_roundtrip, ServeModel, Server, ServerConfig};
use std::fs;
use std::path::Path;

fn oracle() -> Result<LithoSimulator, CliError> {
    LithoSimulator::new(LithoConfig::default())
        .map_err(|e| CliError::Data(format!("litho configuration: {e}")))
}

fn load_clips(path: &str) -> Result<Vec<Clip>, CliError> {
    let bytes = fs::read(path)?;
    Ok(read_clips(bytes.as_slice())?)
}

fn load_labels(path: &str, expected: usize) -> Result<Vec<bool>, CliError> {
    let text = fs::read_to_string(path)?;
    let mut labels = Vec::new();
    for (line_idx, line) in text.lines().enumerate() {
        match line.trim() {
            "" => {}
            "0" => labels.push(false),
            "1" => labels.push(true),
            other => {
                return Err(CliError::Data(format!(
                    "{path}:{}: label must be 0 or 1, got '{other}'",
                    line_idx + 1
                )))
            }
        }
    }
    if labels.len() != expected {
        return Err(CliError::Data(format!(
            "{} labels for {} clips",
            labels.len(),
            expected
        )));
    }
    Ok(labels)
}

fn required<'a>(args: &'a ExperimentArgs, key: &str) -> Result<&'a str, CliError> {
    args.get(key)
        .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
}

/// `hotspot gen --suite <name> --scale S --dir D` where `<name>` is any
/// registered suite (see [`SuiteSpec::REGISTRY`]).
///
/// Writes `train.clips` / `train.labels` / `test.clips` / `test.labels`
/// plus a `manifest.txt` content fingerprint, and — for suites built on a
/// process-corner grid — `train.corners` / `test.corners` per-corner
/// label files.
///
/// # Errors
///
/// Usage, generation and I/O failures.
pub fn cmd_gen(args: &ExperimentArgs) -> Result<String, CliError> {
    let suite = args.string("suite", "iccad");
    let scale = args.f64("scale", 0.01);
    let dir = required(args, "dir")?.to_string();
    let spec = SuiteSpec::by_name(&suite, scale).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown suite '{suite}' ({})",
            SuiteSpec::REGISTRY.join("|")
        ))
    })?;
    let sim = oracle()?;
    let data = spec.build(&sim);
    fs::create_dir_all(&dir)?;
    let corner_schema = data.train.corner_schema();
    for (name, split) in [("train", &data.train), ("test", &data.test)] {
        let mut clip_bytes = Vec::new();
        write_clips(&mut clip_bytes, split.iter().map(|s| &s.clip))?;
        fs::write(Path::new(&dir).join(format!("{name}.clips")), clip_bytes)?;
        let labels: String = split
            .iter()
            .map(|s| if s.hotspot { "1\n" } else { "0\n" })
            .collect();
        fs::write(Path::new(&dir).join(format!("{name}.labels")), labels)?;
        if corner_schema.is_some() {
            let corners: Vec<_> = split
                .iter()
                .map(|s| {
                    s.corners.clone().ok_or_else(|| {
                        CliError::Data(format!(
                            "{name} split sample is missing per-corner labels despite the schema"
                        ))
                    })
                })
                .collect::<Result<_, _>>()?;
            let mut corner_bytes = Vec::new();
            hotspot_datagen::write_corner_labels(&mut corner_bytes, &corners)?;
            fs::write(
                Path::new(&dir).join(format!("{name}.corners")),
                corner_bytes,
            )?;
        }
    }
    let manifest = Manifest::from_data(&data);
    fs::write(Path::new(&dir).join("manifest.txt"), manifest.render())?;
    let corner_note = match &manifest.corner_schema {
        Some(schema) => format!(" with per-corner labels ({schema})"),
        None => String::new(),
    };
    Ok(format!(
        "wrote {} train clips ({} hotspots) and {} test clips ({} hotspots) to {dir}/{corner_note}",
        data.train.len(),
        data.train.hotspot_count(),
        data.test.len(),
        data.test.hotspot_count()
    ))
}

/// `hotspot label --clips F` — runs the lithography oracle, printing one
/// `0`/`1` per clip.
///
/// # Errors
///
/// Usage and I/O failures.
pub fn cmd_label(args: &ExperimentArgs) -> Result<String, CliError> {
    let clips = load_clips(required(args, "clips")?)?;
    let sim = oracle()?;
    let mut out = String::new();
    for clip in &clips {
        out.push(if sim.label_clip(clip) { '1' } else { '0' });
        out.push('\n');
    }
    Ok(out)
}

/// A fingerprint of every configuration knob that shapes the training
/// trajectory; a checkpoint taken under a different configuration is
/// refused on resume rather than silently producing different weights.
fn run_tag(config: &DetectorConfig, k: usize) -> String {
    let m = &config.mgd;
    let b = &config.biased;
    format!(
        "res={} grid={} k={} rounds={} eps_step={} steps={} ft_steps={} ft_lr={} batch={} \
         lr={} alpha={} decay={} val_int={} patience={} val_frac={} balanced={}",
        config.pipeline.resolution_nm(),
        config.pipeline.grid_dim(),
        k,
        b.rounds,
        b.epsilon_step,
        m.max_steps,
        b.fine_tune.max_steps,
        b.fine_tune.lr,
        m.batch_size,
        m.lr,
        m.alpha,
        m.decay_step,
        m.val_interval,
        m.patience,
        m.val_fraction,
        m.balanced_sampling
    )
}

/// `hotspot train --clips F --labels F --model OUT [--k 16 --steps 800
/// --rounds 2 --batch 32 --seed 42] [--checkpoint-every N]
/// [--checkpoint F] [--resume F] [--cascade OUT [--cascade-fnr 0.0]
/// [--cascade-rounds 64] [--cascade-grid 12] [--cascade-holdout 0.25]]
/// [--active ROUNDS [--active-batch 10] [--pool 200 | --pool-clips F]
/// [--pool-seed 7] [--active-clusters 0] [--active-factor 4]
/// [--active-epsilon 0.1] [--active-seed 13]]`
///
/// With `--active ROUNDS`, the labelled clips become the *seed set* of a
/// batch active-learning run: after the initial biased schedule, each
/// round scores an unlabeled pool (synthetic, `--pool` clips drawn with
/// `--pool-seed`, or loaded from `--pool-clips`), selects the
/// `--active-batch` most informative clips (uncertainty + k-means
/// diversity), pays the lithography oracle for those labels only, and
/// fine-tunes. Checkpoints (v2) record every paid-for batch, so a killed
/// run resumed with `--resume` never re-invokes the oracle.
///
/// With `--cascade OUT`, an AdaBoost prefilter over raw density features
/// is additionally trained on the same clips, its margin threshold
/// calibrated on a held-out split to the target false-negative rate, and
/// the result written to `OUT` for `hotspot scan --cascade`.
///
/// With `--checkpoint-every N` (or `--resume`), a crash-safe checkpoint is
/// written atomically every N optimiser steps and at every round boundary
/// (default path: `<model>.ckpt`), and the best-validation model so far is
/// kept at `<model>.best`. Resuming a killed run with the same flags plus
/// `--resume <ckpt>` finishes with bit-identical weights to a run that was
/// never interrupted.
///
/// # Errors
///
/// Usage, data-consistency, checkpoint-mismatch, training and I/O
/// failures.
pub fn cmd_train(args: &ExperimentArgs) -> Result<String, CliError> {
    let clips = load_clips(required(args, "clips")?)?;
    let labels = load_labels(required(args, "labels")?, clips.len())?;
    let model_path = required(args, "model")?.to_string();

    let dataset: Dataset = clips
        .into_iter()
        .zip(labels)
        .map(|(clip, hotspot)| Sample::new(clip, hotspot))
        .collect();

    let mut config: DetectorConfig = hotspot_bench::detector_config(args);
    let k = args.usize("k", 16);
    config.pipeline =
        FeaturePipeline::new(10, 12, k).map_err(|e| CliError::Usage(format!("invalid k: {e}")))?;
    config.biased.rounds = args.usize("rounds", 2);

    let checkpoint_every = args.usize("checkpoint-every", 0);
    let checkpoint_path = args
        .get("checkpoint")
        .map_or_else(|| format!("{model_path}.ckpt"), str::to_string);
    let best_path = format!("{model_path}.best");
    let mut tag = run_tag(&config, k);
    let active = args.get("active").map(|_| ActiveConfig {
        rounds: args.usize("active", 2),
        batch: args.usize("active-batch", 10),
        clusters: args.usize("active-clusters", 0),
        candidate_factor: args.usize("active-factor", 4),
        epsilon: args.f64("active-epsilon", 0.1) as f32,
        fine_tune: config.schedule().fine_tune,
        seed: args.usize("active-seed", 13) as u64,
    });
    let pool_size = args.usize("pool", 200);
    let pool_seed = args.usize("pool-seed", 7) as u64;
    if let Some(a) = &active {
        // The pool and acquisition knobs shape the trajectory too; bake
        // them into the resume fingerprint.
        tag.push_str(&format!(
            " active={} abatch={} aclusters={} afactor={} aeps={} aseed={} pool={} pool_seed={}",
            a.rounds,
            a.batch,
            a.clusters,
            a.candidate_factor,
            a.epsilon,
            a.seed,
            args.get("pool-clips").unwrap_or(&pool_size.to_string()),
            pool_seed,
        ));
    }
    let seed = config.mgd.seed;
    let threads = config.mgd.threads;

    let resume = match args.get("resume") {
        Some(path) => {
            let ckpt = Checkpoint::load(Path::new(path))?;
            ckpt.validate_run(seed, threads, &tag)?;
            Some(ckpt)
        }
        None => None,
    };

    if let Some(active) = active {
        return cmd_train_active(
            args,
            &dataset,
            &config,
            &active,
            RunIdentity { seed, threads, tag },
            resume,
            checkpoint_every,
            &checkpoint_path,
            &model_path,
            k,
            pool_size,
            pool_seed,
        );
    }
    let resumed_rounds = resume.as_ref().map(|c| c.completed.len());
    let checkpointing = checkpoint_every > 0 || resume.is_some();
    // Seed the best-so-far accuracy from the checkpoint so a resume never
    // overwrites `<model>.best` with a worse snapshot — unless the crash
    // landed before that snapshot hit the disk, in which case the first
    // hook event must recreate it.
    let mut best_acc = resume
        .as_ref()
        .filter(|_| Path::new(&best_path).exists())
        .map_or(f64::NEG_INFINITY, |c| {
            c.completed
                .iter()
                .map(|r| r.report.best_val_accuracy)
                .chain(c.trainer.as_ref().map(|t| t.best_acc))
                .fold(f64::NEG_INFINITY, f64::max)
        });

    let (resolution_nm, grid) = (config.pipeline.resolution_nm(), config.pipeline.grid_dim());
    let mut detector = HotspotDetector::fit_resumable(
        &dataset,
        &config,
        resume.as_ref(),
        checkpoint_every,
        &mut |event, net| {
            if !checkpointing {
                return Ok(());
            }
            let (completed, trainer, acc, blob) = match event {
                CheckpointEvent::Step { completed, state } => {
                    (completed, Some(state), state.best_acc, state.best.clone())
                }
                CheckpointEvent::RoundEnd { completed } => (
                    completed,
                    None,
                    completed
                        .last()
                        .map_or(f64::NEG_INFINITY, |r| r.report.best_val_accuracy),
                    ParameterBlob::from_network(net),
                ),
            };
            Checkpoint::new(seed, threads, tag.clone(), net, completed, trainer)
                .save(Path::new(&checkpoint_path))?;
            if acc > best_acc {
                best_acc = acc;
                let best = ModelFile {
                    resolution_nm,
                    grid,
                    k,
                    blob,
                };
                write_atomic(Path::new(&best_path), &best.to_bytes())
                    .map_err(|e| CoreError::Checkpoint(format!("writing {best_path}: {e}")))?;
            }
            Ok(())
        },
    )?;
    let model = ModelFile {
        resolution_nm,
        grid,
        k,
        blob: detector.export_parameters(),
    };
    write_atomic(Path::new(&model_path), &model.to_bytes())?;
    let cascade_note = match args.get("cascade") {
        Some(cascade_path) => {
            let cascade_config = CascadeConfig {
                grid_dim: args.usize("cascade-grid", 12),
                rounds: args.usize("cascade-rounds", 64),
                target_fnr: args.f64("cascade-fnr", 0.0),
                holdout_fraction: args.f64("cascade-holdout", 0.25),
            };
            let prefilter = detector.train_prefilter(&dataset, &cascade_config)?;
            write_atomic(Path::new(cascade_path), &prefilter.to_bytes())?;
            Some(format!(
                "; cascade prefilter ({} stumps, margin > {:.4}, holdout FNR {:.3}) written to {cascade_path}",
                prefilter.calibrated().model().stumps().len(),
                prefilter.margin_threshold(),
                prefilter.calibrated().achieved_fnr(),
            ))
        }
        None => None,
    };
    let mut out = format!(
        "trained on {} clips (final ε = {:.1}, {:.0} s); model written to {model_path}",
        dataset.len(),
        detector.training_report().final_epsilon(),
        detector.training_report().total_train_time_s()
    );
    if let Some(rounds) = resumed_rounds {
        out.push_str(&format!(
            "; resumed with {rounds} round(s) already complete"
        ));
    }
    if checkpointing {
        out.push_str(&format!(
            "; checkpoints at {checkpoint_path}, best model at {best_path}"
        ));
    }
    if let Some(note) = cascade_note {
        out.push_str(&note);
    }
    Ok(out)
}

/// The `--active` arm of `hotspot train`: batch active learning against
/// the lithography oracle, with v2 checkpointing.
#[allow(clippy::too_many_arguments)]
fn cmd_train_active(
    args: &ExperimentArgs,
    seed_data: &Dataset,
    config: &DetectorConfig,
    active: &ActiveConfig,
    identity: RunIdentity,
    resume: Option<Checkpoint>,
    checkpoint_every: usize,
    checkpoint_path: &str,
    model_path: &str,
    k: usize,
    pool_size: usize,
    pool_seed: u64,
) -> Result<String, CliError> {
    let pool = match args.get("pool-clips") {
        Some(path) => ClipPool::from_clips(load_clips(path)?),
        None => {
            let mix: Vec<(PatternKind, f64)> =
                PatternKind::ALL.iter().map(|&kind| (kind, 1.0)).collect();
            ClipPool::synthetic(&mix, pool_size, pool_seed)
        }
    };
    let labeler = LithoLabeler::new(oracle()?);
    let checkpointing = checkpoint_every > 0 || resume.is_some();
    let resumed_batches = resume
        .as_ref()
        .and_then(|c| c.active.as_ref())
        .map(|a| a.rounds.len());
    let (mut detector, report) = hotspot_core::train_active(
        seed_data,
        &pool,
        &labeler,
        config,
        active,
        &identity,
        resume.as_ref(),
        checkpoint_every,
        &mut |ckpt| {
            if checkpointing {
                ckpt.save(Path::new(checkpoint_path))?;
            }
            Ok(())
        },
    )?;
    let model = ModelFile {
        resolution_nm: config.pipeline.resolution_nm(),
        grid: config.pipeline.grid_dim(),
        k,
        blob: detector.export_parameters(),
    };
    write_atomic(Path::new(model_path), &model.to_bytes())?;
    let labelled: usize = report.rounds.iter().map(|r| r.selected.len()).sum();
    let hotspots: usize = report.rounds.iter().map(|r| r.hotspots_found).sum();
    let mut out = format!(
        "active training: {} seed clips + {} round(s) labelled {labelled} of {} pool clips \
         ({hotspots} hotspots found); labeler calls {} (simulated cost {:.0} s); \
         final ε = {:.1}, {:.0} s; model written to {model_path}",
        seed_data.len(),
        report.rounds.len(),
        report.pool_size,
        report.labeler_calls,
        report.labeler_cost_s,
        detector.training_report().final_epsilon(),
        detector.training_report().total_train_time_s(),
    );
    if let Some(batches) = resumed_batches {
        out.push_str(&format!(
            "; resumed with {batches} batch(es) already labelled"
        ));
    }
    if checkpointing {
        out.push_str(&format!("; checkpoints at {checkpoint_path}"));
    }
    Ok(out)
}

/// `hotspot predict --clips F --model M [--threshold 0.5]` — prints
/// `probability<TAB>verdict` per clip.
///
/// # Errors
///
/// Usage, model-format and I/O failures.
pub fn cmd_predict(args: &ExperimentArgs) -> Result<String, CliError> {
    let clips = load_clips(required(args, "clips")?)?;
    let model = ModelFile::from_bytes(&fs::read(required(args, "model")?)?)?;
    let detector = HotspotDetector::from_network(model.pipeline()?, model.network()?);
    let threshold = args.f64("threshold", 0.5) as f32;
    let mut out = String::new();
    for p in detector.predict_batch(&clips)? {
        out.push_str(&format!(
            "{p:.4}\t{}\n",
            if p > threshold { "hotspot" } else { "clean" }
        ));
    }
    Ok(out)
}

/// `hotspot eval --clips F --labels F --model M` — Table-2 metrics.
///
/// # Errors
///
/// Usage, data-consistency, model-format and I/O failures.
pub fn cmd_eval(args: &ExperimentArgs) -> Result<String, CliError> {
    let clips = load_clips(required(args, "clips")?)?;
    let labels = load_labels(required(args, "labels")?, clips.len())?;
    let model = ModelFile::from_bytes(&fs::read(required(args, "model")?)?)?;
    let detector = HotspotDetector::from_network(model.pipeline()?, model.network()?);
    let start = std::time::Instant::now();
    let predictions: Vec<bool> = detector
        .predict_batch(&clips)?
        .iter()
        .map(|&p| p > 0.5)
        .collect();
    let eval_time = start.elapsed().as_secs_f64();
    let r = EvalResult::from_predictions(&predictions, &labels, eval_time);
    Ok(format!(
        "clips {}  hotspots {}  accuracy {:.1}%  false-alarms {}  overall {:.1}%  cpu {:.2}s  odst {:.0}s\n",
        labels.len(),
        r.hotspot_total,
        100.0 * r.accuracy,
        r.false_alarms,
        100.0 * r.overall_accuracy(),
        r.eval_time_s,
        r.odst_s
    ))
}

/// `hotspot genlayout --out FILE [--tiles 4 | --tiles-x X --tiles-y Y]
/// [--seed 7]` — writes one multi-window layout clip for `hotspot scan`.
///
/// # Errors
///
/// Usage and I/O failures.
pub fn cmd_genlayout(args: &ExperimentArgs) -> Result<String, CliError> {
    let out_path = required(args, "out")?.to_string();
    let tiles = args.usize("tiles", 4);
    let tiles_x = args.usize("tiles-x", tiles);
    let tiles_y = args.usize("tiles-y", tiles);
    if tiles_x == 0 || tiles_y == 0 {
        return Err(CliError::Usage("tile counts must be positive".into()));
    }
    let seed = args.usize("seed", 7) as u64;
    let spec = LayoutSpec::uniform(tiles_x, tiles_y, seed);
    let layout = spec.build();
    let mut bytes = Vec::new();
    write_clips(&mut bytes, std::iter::once(&layout))?;
    fs::write(&out_path, bytes)?;
    Ok(format!(
        "wrote {}×{} nm layout ({tiles_x}×{tiles_y} tiles, {} shapes, seed {seed}) to {out_path}",
        spec.width_nm(),
        spec.height_nm(),
        layout.shape_count()
    ))
}

/// `hotspot scan --layout FILE --model FILE [--stride 600] [--window 1200]
/// [--threshold 0.5] [--threads N] [--cascade FILE] [--report FILE]` —
/// slides the detector over a full layout, merging flagged windows into
/// hotspot regions. `--cascade` loads a calibrated prefilter (see `hotspot
/// train --cascade`) so only prefilter-flagged windows reach the CNN.
/// `--report` writes the full JSON scan report.
///
/// # Errors
///
/// Usage, model-format, scan-geometry and I/O failures.
pub fn cmd_scan(args: &ExperimentArgs) -> Result<String, CliError> {
    let layouts = load_clips(required(args, "layout")?)?;
    let layout = match layouts.first() {
        Some(layout) => layout,
        None => return Err(CliError::Data("layout file holds no clip".into())),
    };
    let model = ModelFile::from_bytes(&fs::read(required(args, "model")?)?)?;
    let mut detector = HotspotDetector::from_network(model.pipeline()?, model.network()?);
    if args.get("threads").is_some() {
        detector.set_parallelism(
            Parallelism::fixed(args.usize("threads", 1))
                .map_err(|e| CliError::Usage(e.to_string()))?,
        );
    }
    let cascade = match args.get("cascade") {
        Some(path) => Some(CascadePrefilter::from_bytes(&fs::read(path)?)?),
        None => None,
    };
    let mut config = ScanConfig::new(args.usize("stride", 600) as i64)?
        .with_window_nm(args.usize("window", 1200) as i64)?
        .with_threshold(args.f64("threshold", 0.5) as f32)?
        .with_provenance(model.provenance(cascade.as_ref().map(CascadePrefilter::crc)));
    if let Some(cascade) = cascade {
        config = config.with_cascade(cascade);
    }
    let report = detector.scan(layout, &config)?;
    if let Some(path) = args.get("report") {
        fs::write(path, report.to_json())?;
    }
    let mut out = format!(
        "scanned {}×{} nm layout at stride {} nm: {} windows ({}×{}), {} flagged in {} region(s)\n\
         block-DCT cache: {:.1}% hit rate ({} transformed, {} reused); {:.0} windows/s\n\
         {} thread(s): prepare {:.3} s, scan {:.3} s, merge {:.3} s\n",
        report.layout_width_nm,
        report.layout_height_nm,
        report.stride_nm,
        report.windows.len(),
        report.grid_cols,
        report.grid_rows,
        report.positives(),
        report.regions.len(),
        100.0 * report.cache.hit_rate(),
        report.cache.computed,
        report.cache.hits,
        report.windows_per_sec(),
        report.threads,
        report.prepare_s,
        report.scan_s,
        report.merge_s
    );
    if let Some(stats) = &report.cascade {
        out.push_str(&format!(
            "cascade: {} cleared, {} forwarded to CNN ({:.2} CNN evals/window, margin > {:.4})\n",
            stats.cleared,
            stats.forwarded,
            report.cnn_evals_per_window(),
            stats.margin_threshold
        ));
    }
    Ok(out)
}

/// `hotspot serve --socket PATH --model FILE [--cascade FILE]
/// [--queue 64] [--threads N]` — runs the scan-as-a-service daemon on a
/// Unix domain socket until a `shutdown` request drains it.
///
/// Concurrent `predict` requests are coalesced into shared GEMM blocks by
/// a bounded micro-batching queue (bound `--queue`; a full queue refuses
/// with a structured `busy` reply). `reload` requests swap the served
/// model with zero downtime. See `hotspot client` for the request side.
///
/// # Errors
///
/// Usage, model-format and socket failures; per-request failures are
/// answered on the wire as structured error replies instead.
pub fn cmd_serve(args: &ExperimentArgs) -> Result<String, CliError> {
    let socket = required(args, "socket")?.to_string();
    let model_path = required(args, "model")?;
    let mut model = ServeModel::load(model_path, args.get("cascade"))
        .map_err(|e| CliError::Server(e.to_string()))?;
    if args.get("threads").is_some() {
        model.set_parallelism(
            Parallelism::fixed(args.usize("threads", 1))
                .map_err(|e| CliError::Usage(e.to_string()))?,
        );
    }
    let mut config = ServerConfig::new(&socket);
    config.queue_capacity = args.usize("queue", config.queue_capacity);
    let provenance = model.provenance();
    let server = Server::bind(model, &config).map_err(|e| CliError::Server(e.to_string()))?;
    let engine = server.engine().clone();
    eprintln!(
        "serving {} on {socket} (queue bound {})",
        provenance.render(),
        config.queue_capacity
    );
    server.run().map_err(|e| CliError::Server(e.to_string()))?;
    let c = engine.counters();
    Ok(format!(
        "served {} request(s) on {socket}: {} predicts ({} clips, {} micro-batches, largest {}), \
         {} scans, {} reloads, {} errors ({} busy)\n",
        c.requests,
        c.predicts,
        c.clips,
        c.batches,
        c.max_batch,
        c.scans,
        c.reloads,
        c.errors,
        c.rejected_busy
    ))
}

/// `hotspot client --socket PATH --op OP [...]` — sends one request to a
/// running daemon and prints the raw JSON reply line.
///
/// Ops: `predict` (`--clips FILE [--threshold 0.5]`), `scan` (`--layout
/// FILE [--stride 600] [--window 1200] [--threshold 0.5]
/// [--windows true|false]`), `status`, `reload` (`--model-path FILE
/// [--cascade-path FILE]`), `shutdown`. `--id` sets the request ID
/// (default `cli`). `--raw LINE` sends an arbitrary line verbatim, for
/// protocol testing.
///
/// # Errors
///
/// Usage and transport failures; a daemon-side error reply (`"ok":
/// false`) becomes [`CliError::Server`] carrying the reply line, so the
/// process exits nonzero on protocol errors.
pub fn cmd_client(args: &ExperimentArgs) -> Result<String, CliError> {
    let socket = required(args, "socket")?.to_string();
    let id = args.string("id", "cli");
    let line = match args.get("raw") {
        Some(raw) => raw.to_string(),
        None => {
            let request = match required(args, "op")? {
                "predict" => Request::Predict(PredictRequest {
                    id,
                    clips: load_clips(required(args, "clips")?)?
                        .iter()
                        .map(ClipSpec::from_clip)
                        .collect(),
                    threshold: args.f64("threshold", 0.5) as f32,
                }),
                "scan" => {
                    let layouts = load_clips(required(args, "layout")?)?;
                    let layout = layouts
                        .first()
                        .ok_or_else(|| CliError::Data("layout file holds no clip".into()))?;
                    Request::Scan(ScanRequest {
                        id,
                        layout: ClipSpec::from_clip(layout),
                        stride_nm: args.usize("stride", 600) as i64,
                        window_nm: args.usize("window", 1200) as i64,
                        threshold: args.f64("threshold", 0.5) as f32,
                        include_windows: args.string("windows", "true") == "true",
                    })
                }
                "status" => Request::Status { id },
                "reload" => Request::Reload(ReloadRequest {
                    id,
                    model_path: required(args, "model-path")?.to_string(),
                    cascade_path: args.get("cascade-path").map(str::to_string),
                }),
                "shutdown" => Request::Shutdown { id },
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown op '{other}' (predict|scan|status|reload|shutdown)"
                    )))
                }
            };
            request.render()
        }
    };
    let reply = client_roundtrip(Path::new(&socket), &line)?;
    let ok = Json::parse(&reply)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        .unwrap_or(false);
    if !ok {
        return Err(CliError::Server(reply));
    }
    Ok(format!("{reply}\n"))
}

/// Usage text printed for `--help`/bad invocations.
pub const USAGE: &str = "\
hotspot — layout hotspot detection (DAC'17 deep biased learning)

USAGE:
  hotspot gen     --dir DIR [--scale 0.01]
                  [--suite iccad|industry1|industry2|industry3|topo|vias|rdl|golden-mini]
  hotspot label   --clips FILE
  hotspot train   --clips FILE --labels FILE --model OUT [--k 16] [--steps 800] [--rounds 2]
                  [--checkpoint-every N] [--checkpoint FILE] [--resume FILE]
                  [--cascade OUT] [--cascade-fnr 0.0] [--cascade-rounds 64]
                  [--cascade-grid 12] [--cascade-holdout 0.25]
                  [--active ROUNDS] [--active-batch 10] [--pool 200 | --pool-clips FILE]
                  [--pool-seed 7] [--active-clusters 0] [--active-factor 4]
                  [--active-epsilon 0.1] [--active-seed 13]
  hotspot predict --clips FILE --model FILE [--threshold 0.5]
  hotspot eval    --clips FILE --labels FILE --model FILE
  hotspot genlayout --out FILE [--tiles 4 | --tiles-x X --tiles-y Y] [--seed 7]
  hotspot scan    --layout FILE --model FILE [--stride 600] [--window 1200]
                  [--threshold 0.5] [--threads N] [--cascade FILE] [--report FILE]
  hotspot serve   --socket PATH --model FILE [--cascade FILE] [--queue 64] [--threads N]
  hotspot client  --socket PATH --op predict|scan|status|reload|shutdown [--id cli]
                  [--clips FILE] [--layout FILE] [--threshold 0.5] [--stride 600]
                  [--window 1200] [--windows true|false] [--model-path FILE]
                  [--cascade-path FILE] [--raw LINE]

Clip files use the text format of hotspot-geometry (clip/rect/end records);
label files carry one 0/1 per clip line.

gen writes train/test clip and label files plus manifest.txt, a content
fingerprint (per-split and per-family CRCs) that pins the generated bytes;
regenerating with the same suite, scale and tool version reproduces it
exactly. Suites built on a dose x defocus process-corner grid (topo,
golden-mini) additionally write train.corners / test.corners with one
'<severity> <fail-bits>' line per clip.

Scanning slides the detector window over a full layout (see genlayout),
reusing per-block DCT coefficients between overlapping windows whenever the
stride is a multiple of the block size, and merges flagged windows into
hotspot regions; --report writes the JSON scan report.

Training with --cascade OUT also fits an AdaBoost prefilter on raw density
features, calibrates its margin threshold on a held-out split to the
--cascade-fnr false-negative target, and writes it to OUT; hotspot scan
--cascade FILE then sends only prefilter-flagged windows to the CNN
(cleared windows record the margin and score 0).

Training with --checkpoint-every N writes a crash-safe checkpoint (default
<model>.ckpt) every N steps and keeps the best-validation model at
<model>.best; after a crash, rerun with the same flags plus --resume FILE
to finish with bit-identical weights to an uninterrupted run.

Training with --active ROUNDS treats the labelled clips as a seed set and
runs batch active learning against an unlabeled pool: each round selects
the --active-batch most informative clips (CNN uncertainty + k-means
diversity over feature tensors), pays the lithography oracle for those
labels only, and fine-tunes. The pool is synthetic (--pool clips, drawn
with --pool-seed) or loaded from --pool-clips. Checkpoints record every
paid-for batch, so resuming a killed run never re-invokes the oracle.

Serving keeps the detector resident behind a Unix domain socket speaking
newline-delimited JSON (schema v1): concurrent predict requests coalesce
into shared GEMM micro-batches, reload swaps models with zero downtime,
and every reply carries the provenance (model CRC) that produced it.
hotspot client wraps the protocol for shell use and exits nonzero when the
daemon answers with a structured error reply.
";

/// Dispatches a command name plus `--flag value` arguments.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown commands, plus whatever the
/// command itself raises.
pub fn dispatch(command: &str, args: &ExperimentArgs) -> Result<String, CliError> {
    match command {
        "gen" => cmd_gen(args),
        "label" => cmd_label(args),
        "train" => cmd_train(args),
        "predict" => cmd_predict(args),
        "eval" => cmd_eval(args),
        "genlayout" => cmd_genlayout(args),
        "scan" => cmd_scan(args),
        "serve" => cmd_serve(args),
        "client" => cmd_client(args),
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("hotspot-cli-test-{name}"));
        fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn load_labels_reports_one_based_line_numbers() {
        let path = write_temp("bad-labels", "1\n\n0\nmaybe\n1\n");
        let err = load_labels(path.to_str().unwrap(), 3).unwrap_err();
        let msg = err.to_string();
        // Line 4 holds the bad token ('maybe'); blank line 2 still counts.
        assert!(msg.contains(":4:"), "missing line number in: {msg}");
        assert!(msg.contains("maybe"), "missing bad token in: {msg}");
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn gen_writes_manifest_and_corner_labels_for_corner_suites() {
        let dir = std::env::temp_dir().join(format!("hotspot-cli-gen-{}", std::process::id()));
        let args =
            ExperimentArgs::from_iter(["--suite", "golden-mini", "--dir", dir.to_str().unwrap()]);
        let summary = cmd_gen(&args).unwrap();
        assert!(summary.contains("per-corner labels"), "summary: {summary}");
        for file in [
            "train.clips",
            "train.labels",
            "train.corners",
            "test.clips",
            "test.labels",
            "test.corners",
            "manifest.txt",
        ] {
            assert!(dir.join(file).exists(), "missing {file}");
        }
        let manifest_text = fs::read_to_string(dir.join("manifest.txt")).unwrap();
        let manifest = Manifest::parse(&manifest_text).unwrap();
        assert_eq!(manifest.name, "GoldenMini");
        assert!(manifest.corner_schema.is_some());
        let n_train = fs::read_to_string(dir.join("train.labels"))
            .unwrap()
            .lines()
            .count();
        let corners = fs::read(dir.join("train.corners")).unwrap();
        let parsed = hotspot_datagen::read_corner_labels(corners.as_slice()).unwrap();
        assert_eq!(parsed.len(), n_train);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn gen_rejects_unknown_suite_naming_the_registry() {
        let args = ExperimentArgs::from_iter(["--suite", "nope", "--dir", "/tmp/unused"]);
        let msg = cmd_gen(&args).unwrap_err().to_string();
        for name in SuiteSpec::REGISTRY {
            assert!(
                msg.contains(name),
                "registry entry {name} missing from: {msg}"
            );
        }
    }

    #[test]
    fn load_labels_accepts_blank_lines_and_checks_count() {
        let path = write_temp("good-labels", "1\n\n0\n 1 \n");
        assert_eq!(
            load_labels(path.to_str().unwrap(), 3).unwrap(),
            vec![true, false, true]
        );
        let err = load_labels(path.to_str().unwrap(), 5).unwrap_err();
        assert!(err.to_string().contains("3 labels for 5 clips"));
        fs::remove_file(path).unwrap();
    }
}
