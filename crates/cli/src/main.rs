//! The `hotspot` command-line entry point; see [`hotspot_cli::commands`].

use hotspot_bench::ExperimentArgs;
use hotspot_cli::commands;

fn main() {
    let mut argv = std::env::args().skip(1);
    let command = match argv.next() {
        Some(c) if c != "--help" && c != "-h" => c,
        _ => {
            eprint!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let args = ExperimentArgs::from_iter(argv);
    match commands::dispatch(&command, &args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", commands::USAGE);
            std::process::exit(1);
        }
    }
}
