//! Library backing the `hotspot` command-line tool.
//!
//! The CLI stitches the suite together for shell use:
//!
//! ```text
//! hotspot gen     --suite iccad --scale 0.01 --dir data      # synthesise a benchmark
//! hotspot label   --clips data/test.clips                    # run the litho oracle
//! hotspot train   --clips data/train.clips --labels data/train.labels --model m.hsnn
//! hotspot eval    --clips data/test.clips --labels data/test.labels --model m.hsnn
//! hotspot predict --clips data/test.clips --model m.hsnn     # probability per clip
//! ```
//!
//! Clips use the text format of [`hotspot_geometry::io`]; labels are one
//! `0`/`1` per line, aligned with the clip records; models are
//! self-describing binary files ([`model_file`]).

pub mod commands;
pub mod model_file;

use std::error::Error;
use std::fmt;

/// CLI-level errors with operator-friendly messages.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (unknown command, missing flag).
    Usage(String),
    /// File-level failure.
    Io(std::io::Error),
    /// Clip-format failure.
    ClipFormat(hotspot_geometry::io::ClipIoError),
    /// Training/evaluation failure (including model-file decode errors,
    /// [`hotspot_core::CoreError::Model`]).
    Core(hotspot_core::CoreError),
    /// Input data inconsistency (e.g. label/clip count mismatch).
    Data(String),
    /// The serve daemon replied with a structured error; the payload is
    /// the rendered [`hotspot_core::api::ErrorReply`] line, so scripts
    /// can parse the kind from stderr.
    Server(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::ClipFormat(e) => write!(f, "clip file error: {e}"),
            CliError::Core(e) => write!(f, "detector error: {e}"),
            CliError::Data(msg) => write!(f, "data error: {msg}"),
            CliError::Server(reply) => write!(f, "server error: {reply}"),
        }
    }
}

impl Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<hotspot_geometry::io::ClipIoError> for CliError {
    fn from(e: hotspot_geometry::io::ClipIoError) -> Self {
        CliError::ClipFormat(e)
    }
}

impl From<hotspot_core::CoreError> for CliError {
    fn from(e: hotspot_core::CoreError) -> Self {
        CliError::Core(e)
    }
}
