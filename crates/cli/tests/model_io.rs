//! Property tests for the model-file wire format: serialisation
//! round-trips exactly, and corrupted bytes are either rejected or decode
//! to the identical model — never silently to a different one.

use hotspot_cli::model_file::ModelFile;
use hotspot_nn::layers::Dense;
use hotspot_nn::serialize::ParameterBlob;
use hotspot_nn::Network;
use proptest::prelude::*;

/// A parameter blob of `ins * outs + outs` values cycled from `weights`.
fn blob_with(weights: &[f32], ins: usize, outs: usize) -> ParameterBlob {
    let mut net = Network::new();
    net.push(Dense::new(ins, outs, 0));
    let mut source = weights.iter().cycle();
    net.visit_params(&mut |w, _| {
        for v in w.iter_mut() {
            *v = *source.next().expect("cycled iterator never ends");
        }
    });
    ParameterBlob::from_network(&mut net)
}

fn arb_model() -> impl Strategy<Value = ModelFile> {
    (
        (1u32..=60, 4usize..=16, 1usize..=8),
        (1usize..=5, 1usize..=4),
        proptest::collection::vec(
            prop_oneof![
                Just(0.0f32),
                Just(-0.0f32),
                Just(f32::MIN_POSITIVE),
                Just(1.0e30f32),
                -8.0f32..8.0,
            ],
            1..32,
        ),
    )
        .prop_map(
            |((resolution_nm, grid, k), (ins, outs), weights)| ModelFile {
                resolution_nm,
                grid,
                k,
                blob: blob_with(&weights, ins, outs),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_exact(model in arb_model()) {
        let bytes = model.to_bytes();
        let back = ModelFile::from_bytes(&bytes).expect("own output parses");
        prop_assert_eq!(&back, &model);
        // Re-encoding is byte-stable.
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn any_truncation_is_rejected(model in arb_model(), cut in 0.0f64..1.0) {
        let bytes = model.to_bytes();
        let len = ((bytes.len() as f64 * cut) as usize).min(bytes.len() - 1);
        prop_assert!(ModelFile::from_bytes(&bytes[..len]).is_err());
    }

    #[test]
    fn corruption_never_yields_a_different_model(
        model in arb_model(),
        pos in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let bytes = model.to_bytes();
        let offset = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
        let mut bad = bytes.clone();
        bad[offset] ^= mask;
        // Decoding must never panic; a successful decode is only
        // acceptable when the damage was semantically invisible (e.g. hex
        // case in the crc line) and the model is exactly the one written.
        if let Ok(decoded) = ModelFile::from_bytes(&bad) {
            prop_assert_eq!(decoded, model);
        }
    }
}
