//! End-to-end CLI flow: gen → label → train → predict → eval, driven
//! through the command functions against a temporary directory.

use hotspot_bench::ExperimentArgs;
use hotspot_cli::commands;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotspot-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn args(pairs: &[(&str, &str)]) -> ExperimentArgs {
    let tokens: Vec<String> = pairs
        .iter()
        .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
        .collect();
    ExperimentArgs::from_iter(tokens)
}

#[test]
fn full_flow_gen_label_train_predict_eval() {
    let dir = tmp_dir("flow");
    let dir_s = dir.to_str().unwrap();

    // gen: tiny benchmark.
    let out = commands::dispatch(
        "gen",
        &args(&[("dir", dir_s), ("suite", "iccad"), ("scale", "0.001")]),
    )
    .expect("gen succeeds");
    assert!(out.contains("train clips"), "{out}");
    let train_clips = dir.join("train.clips");
    let train_labels = dir.join("train.labels");
    let test_clips = dir.join("test.clips");
    let test_labels = dir.join("test.labels");
    for f in [&train_clips, &train_labels, &test_clips, &test_labels] {
        assert!(f.exists(), "{f:?} missing");
    }

    // label: the oracle must agree with the generated labels exactly.
    let labelled = commands::dispatch("label", &args(&[("clips", test_clips.to_str().unwrap())]))
        .expect("label succeeds");
    let generated = std::fs::read_to_string(&test_labels).unwrap();
    assert_eq!(
        labelled.trim(),
        generated.trim(),
        "oracle disagrees with gen"
    );

    // train: tiny budget — we only verify the plumbing, not model quality.
    let model = dir.join("model.hsnn");
    let out = commands::dispatch(
        "train",
        &args(&[
            ("clips", train_clips.to_str().unwrap()),
            ("labels", train_labels.to_str().unwrap()),
            ("model", model.to_str().unwrap()),
            ("k", "4"),
            ("steps", "40"),
            ("rounds", "1"),
            ("batch", "8"),
        ]),
    )
    .expect("train succeeds");
    assert!(out.contains("model written"), "{out}");
    assert!(model.exists());

    // predict: one probability line per clip, all probabilities in [0, 1].
    let pred = commands::dispatch(
        "predict",
        &args(&[
            ("clips", test_clips.to_str().unwrap()),
            ("model", model.to_str().unwrap()),
        ]),
    )
    .expect("predict succeeds");
    let test_count = generated.trim().lines().count();
    assert_eq!(pred.trim().lines().count(), test_count);
    for line in pred.trim().lines() {
        let p: f32 = line.split('\t').next().unwrap().parse().unwrap();
        assert!((0.0..=1.0).contains(&p));
        assert!(line.ends_with("hotspot") || line.ends_with("clean"));
    }

    // eval: metrics line with all fields.
    let eval = commands::dispatch(
        "eval",
        &args(&[
            ("clips", test_clips.to_str().unwrap()),
            ("labels", test_labels.to_str().unwrap()),
            ("model", model.to_str().unwrap()),
        ]),
    )
    .expect("eval succeeds");
    assert!(eval.contains("accuracy"), "{eval}");
    assert!(eval.contains("odst"), "{eval}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_are_reported() {
    assert!(matches!(
        commands::dispatch("frobnicate", &args(&[])),
        Err(hotspot_cli::CliError::Usage(_))
    ));
    assert!(matches!(
        commands::dispatch("train", &args(&[])),
        Err(hotspot_cli::CliError::Usage(_))
    ));
    assert!(matches!(
        commands::dispatch("gen", &args(&[("dir", "/tmp/x"), ("suite", "bogus")])),
        Err(hotspot_cli::CliError::Usage(_))
    ));
}

#[test]
fn label_count_mismatch_rejected() {
    let dir = tmp_dir("mismatch");
    let clips = dir.join("c.clips");
    std::fs::write(&clips, "clip 0 0 1200 1200\nrect 100 100 300 900\nend\n").unwrap();
    let labels = dir.join("c.labels");
    std::fs::write(&labels, "1\n0\n").unwrap(); // two labels, one clip
    let result = commands::dispatch(
        "train",
        &args(&[
            ("clips", clips.to_str().unwrap()),
            ("labels", labels.to_str().unwrap()),
            ("model", dir.join("m.hsnn").to_str().unwrap()),
        ]),
    );
    assert!(matches!(result, Err(hotspot_cli::CliError::Data(_))));
    let _ = std::fs::remove_dir_all(&dir);
}
