//! Crash/resume integration test against the real `hotspot` binary: a
//! training process is SIGKILLed mid-flight, resumed from its checkpoint,
//! and must finish with a model byte-identical to an uninterrupted run.

#![cfg(unix)]

use hotspot_bench::ExperimentArgs;
use hotspot_cli::commands;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotspot-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn args(pairs: &[(&str, &str)]) -> ExperimentArgs {
    let tokens: Vec<String> = pairs
        .iter()
        .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
        .collect();
    ExperimentArgs::from_iter(tokens)
}

/// Training flags shared by every run in this test; any drift between the
/// reference and the killed/resumed runs would void the comparison.
fn train_args(dir: &Path, model: &Path, extra: &[(&str, &str)]) -> Vec<String> {
    let mut flags = vec![
        "train".to_string(),
        "--clips".into(),
        dir.join("train.clips").to_str().expect("utf-8 path").into(),
        "--labels".into(),
        dir.join("train.labels")
            .to_str()
            .expect("utf-8 path")
            .into(),
        "--model".into(),
        model.to_str().expect("utf-8 path").into(),
    ];
    for (k, v) in [
        ("k", "4"),
        ("steps", "120"),
        ("rounds", "2"),
        ("batch", "8"),
        ("seed", "11"),
    ]
    .iter()
    .chain(extra)
    {
        flags.push(format!("--{k}"));
        flags.push((*v).to_string());
    }
    flags
}

#[test]
fn sigkill_mid_training_resumes_bit_identical() {
    let dir = tmp_dir("kill-resume");
    let dir_s = dir.to_str().expect("utf-8 path");
    commands::dispatch(
        "gen",
        &args(&[("dir", dir_s), ("suite", "iccad"), ("scale", "0.001")]),
    )
    .expect("gen succeeds");

    // Reference: an uninterrupted run of the same training configuration
    // (in-process; same code path the binary dispatches to).
    let ref_model = dir.join("reference.hsnn");
    let flags = train_args(&dir, &ref_model, &[]);
    commands::dispatch(
        "train",
        &ExperimentArgs::from_iter(flags[1..].iter().cloned()),
    )
    .expect("reference train succeeds");

    // Victim: the real binary with periodic checkpointing, SIGKILLed as
    // soon as the first checkpoint lands on disk.
    let model = dir.join("model.hsnn");
    let ckpt = dir.join("model.hsnn.ckpt");
    let mut child = Command::new(env!("CARGO_BIN_EXE_hotspot"))
        .args(train_args(&dir, &model, &[("checkpoint-every", "20")]))
        .spawn()
        .expect("spawn train");
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        if ckpt.exists() {
            // Child::kill is SIGKILL on Unix: no destructors, no flushing
            // — exactly the crash the checkpoint must survive. (If the run
            // already finished, the kill is a harmless no-op and resume
            // degenerates to re-emitting the final model.)
            let _ = child.kill();
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            break; // finished before the first poll saw the checkpoint
        }
        assert!(Instant::now() < deadline, "no checkpoint within 180 s");
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.wait();
    assert!(ckpt.exists(), "checkpoint file must exist after the kill");

    // Resume with the same flags; must run to completion.
    let status = Command::new(env!("CARGO_BIN_EXE_hotspot"))
        .args(train_args(
            &dir,
            &model,
            &[
                ("checkpoint-every", "20"),
                ("resume", ckpt.to_str().expect("utf-8 path")),
            ],
        ))
        .status()
        .expect("spawn resume");
    assert!(status.success(), "resumed train failed: {status}");

    let resumed = std::fs::read(&model).expect("resumed model written");
    let reference = std::fs::read(&ref_model).expect("reference model written");
    assert_eq!(
        resumed, reference,
        "resumed model must be byte-identical to the uninterrupted run"
    );
    assert!(
        dir.join("model.hsnn.best").exists(),
        "best-validation snapshot retained alongside the checkpoint"
    );

    // A checkpoint from different flags is refused instead of silently
    // producing different weights.
    let err = commands::dispatch(
        "train",
        &ExperimentArgs::from_iter(
            train_args(
                &dir,
                &model,
                &[
                    ("steps", "200"), // differs from the checkpointed run
                    ("resume", ckpt.to_str().expect("utf-8 path")),
                ],
            )[1..]
                .iter()
                .cloned(),
        ),
    );
    assert!(err.is_err(), "mismatched resume configuration must fail");

    let _ = std::fs::remove_dir_all(&dir);
}
