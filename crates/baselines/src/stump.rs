//! Depth-1 decision stumps: the AdaBoost weak learner.

use serde::{Deserialize, Serialize};

/// A decision stump: `sign(polarity) · (feature[index] > threshold)`.
///
/// Predicts `+1` (hotspot) when
/// `polarity * (features[index] - threshold) > 0`, else `-1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionStump {
    /// Feature index the stump tests.
    pub feature: usize,
    /// Decision threshold on that feature.
    pub threshold: f32,
    /// `+1.0` (greater-than is hotspot) or `-1.0` (less-than is hotspot).
    pub polarity: f32,
}

impl DecisionStump {
    /// The stump's ±1 prediction.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than the stump's feature index.
    #[inline]
    pub fn predict(&self, features: &[f32]) -> f32 {
        if self.polarity * (features[self.feature] - self.threshold) > 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Exhaustively fits the stump minimising weighted 0-1 error over every
    /// (feature, threshold, polarity) candidate. Thresholds are midpoints
    /// between consecutive sorted unique feature values.
    ///
    /// Returns the best stump and its weighted error.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set or mismatched slice lengths.
    pub fn fit(samples: &[Vec<f32>], labels: &[f32], weights: &[f64]) -> (DecisionStump, f64) {
        assert!(!samples.is_empty(), "empty training set");
        assert_eq!(samples.len(), labels.len());
        assert_eq!(samples.len(), weights.len());
        let dims = samples[0].len();
        let total: f64 = weights.iter().sum();

        let mut best = DecisionStump {
            feature: 0,
            threshold: 0.0,
            polarity: 1.0,
        };
        let mut best_err = f64::INFINITY;

        // Per feature: sort samples by value and scan thresholds, keeping a
        // running sum of weighted labels to evaluate both polarities in
        // O(n) after the sort.
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for f in 0..dims {
            order.sort_by(|&a, &b| samples[a][f].total_cmp(&samples[b][f]));
            // err(polarity=+1, threshold t) = Σ_{x<=t, y=+1} w + Σ_{x>t, y=-1} w
            // Scan boundary from left to right maintaining the two sums.
            let mut below_pos = 0.0f64; // weight of positives at or below t
            let mut below_neg = 0.0f64;
            let total_pos: f64 = order
                .iter()
                .filter(|&&i| labels[i] > 0.0)
                .map(|&i| weights[i])
                .sum();
            let total_neg = total - total_pos;
            let mut k = 0usize;
            while k < order.len() {
                // Advance over ties so the threshold sits strictly between
                // distinct values.
                let v = samples[order[k]][f];
                while k < order.len() && samples[order[k]][f] == v {
                    let i = order[k];
                    if labels[i] > 0.0 {
                        below_pos += weights[i];
                    } else {
                        below_neg += weights[i];
                    }
                    k += 1;
                }
                let threshold = if k < order.len() {
                    (v + samples[order[k]][f]) / 2.0
                } else {
                    v + 1.0
                };
                // polarity +1: predict hotspot when value > threshold.
                let err_pos = below_pos + (total_neg - below_neg);
                // polarity -1: predict hotspot when value <= threshold.
                let err_neg = below_neg + (total_pos - below_pos);
                if err_pos < best_err {
                    best_err = err_pos;
                    best = DecisionStump {
                        feature: f,
                        threshold,
                        polarity: 1.0,
                    };
                }
                if err_neg < best_err {
                    best_err = err_neg;
                    best = DecisionStump {
                        feature: f,
                        threshold,
                        polarity: -1.0,
                    };
                }
            }
        }
        (best, best_err / total.max(f64::MIN_POSITIVE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_respects_polarity() {
        let s = DecisionStump {
            feature: 1,
            threshold: 0.5,
            polarity: 1.0,
        };
        assert_eq!(s.predict(&[0.0, 0.9]), 1.0);
        assert_eq!(s.predict(&[0.0, 0.1]), -1.0);
        let n = DecisionStump {
            polarity: -1.0,
            ..s
        };
        assert_eq!(n.predict(&[0.0, 0.9]), -1.0);
        assert_eq!(n.predict(&[0.0, 0.1]), 1.0);
    }

    #[test]
    fn fit_finds_separating_threshold() {
        let samples = vec![vec![0.1f32], vec![0.2], vec![0.8], vec![0.9]];
        let labels = vec![-1.0, -1.0, 1.0, 1.0];
        let weights = vec![0.25f64; 4];
        let (stump, err) = DecisionStump::fit(&samples, &labels, &weights);
        assert!(err < 1e-12, "separable data must have zero error");
        assert_eq!(stump.feature, 0);
        assert!(stump.threshold > 0.2 && stump.threshold < 0.8);
        assert_eq!(stump.polarity, 1.0);
    }

    #[test]
    fn fit_uses_best_feature() {
        // Feature 0 is noise; feature 1 separates.
        let samples = vec![
            vec![0.5f32, 0.0],
            vec![0.1, 0.1],
            vec![0.9, 0.9],
            vec![0.4, 1.0],
        ];
        let labels = vec![-1.0, -1.0, 1.0, 1.0];
        let weights = vec![0.25f64; 4];
        let (stump, err) = DecisionStump::fit(&samples, &labels, &weights);
        assert_eq!(stump.feature, 1);
        assert!(err < 1e-12);
    }

    #[test]
    fn fit_respects_weights() {
        // One heavily-weighted mislabeled point flips the best stump.
        let samples = vec![vec![0.0f32], vec![1.0]];
        let labels = vec![1.0, -1.0]; // inverted polarity data
        let weights = vec![0.9f64, 0.1];
        let (stump, err) = DecisionStump::fit(&samples, &labels, &weights);
        // Classifying the heavy point correctly requires polarity -1.
        assert_eq!(stump.polarity, -1.0);
        assert!(err < 0.2);
    }

    #[test]
    fn fit_inverted_labels_uses_negative_polarity() {
        let samples = vec![vec![0.1f32], vec![0.2], vec![0.8], vec![0.9]];
        let labels = vec![1.0, 1.0, -1.0, -1.0];
        let weights = vec![0.25f64; 4];
        let (stump, err) = DecisionStump::fit(&samples, &labels, &weights);
        assert!(err < 1e-12);
        assert_eq!(stump.polarity, -1.0);
    }

    #[test]
    fn tied_values_handled() {
        let samples = vec![vec![0.5f32], vec![0.5], vec![0.5]];
        let labels = vec![1.0, -1.0, 1.0];
        let weights = vec![1.0 / 3.0; 3];
        let (_, err) = DecisionStump::fit(&samples, &labels, &weights);
        // Best achievable: misclassify the minority side.
        assert!((err - 1.0 / 3.0).abs() < 1e-9);
    }
}
