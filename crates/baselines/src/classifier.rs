//! Common scoring interface for baseline detectors.

/// A trained binary classifier over flat feature vectors.
///
/// Implementations return a real-valued *hotspot score*; the conventional
/// decision is `score > 0.0 → hotspot`, and threshold shifts trade accuracy
/// against false alarms (the boundary-shifting comparison of the paper's
/// Figure 4 applies to these baselines just as to the CNN).
pub trait Classifier {
    /// Real-valued hotspot score of a feature vector (positive = hotspot).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `features` has the wrong length.
    fn score(&self, features: &[f32]) -> f32;

    /// Hard decision at threshold 0.
    fn predict(&self, features: &[f32]) -> bool {
        self.score(features) > 0.0
    }

    /// Hard decision at a shifted threshold.
    fn predict_with_threshold(&self, features: &[f32], threshold: f32) -> bool {
        self.score(features) > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f32);
    impl Classifier for Constant {
        fn score(&self, _features: &[f32]) -> f32 {
            self.0
        }
    }

    #[test]
    fn default_threshold_is_zero() {
        assert!(Constant(0.1).predict(&[]));
        assert!(!Constant(-0.1).predict(&[]));
        assert!(!Constant(0.0).predict(&[]));
    }

    #[test]
    fn threshold_shifts_decision() {
        let c = Constant(0.4);
        assert!(c.predict_with_threshold(&[], 0.3));
        assert!(!c.predict_with_threshold(&[], 0.5));
    }
}
