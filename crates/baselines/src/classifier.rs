//! Common scoring interface for baseline detectors.

use crate::BaselineError;

/// A trained binary classifier over flat feature vectors.
///
/// Implementations return a real-valued *hotspot score*; the conventional
/// decision is `score > 0.0 → hotspot`, and threshold shifts trade accuracy
/// against false alarms (the boundary-shifting comparison of the paper's
/// Figure 4 applies to these baselines just as to the CNN).
///
/// [`Classifier::try_score`] is the required, checked entry point: library
/// code (the scan engine, batch evaluation) calls it and routes a
/// wrong-length feature vector through [`BaselineError`] instead of
/// panicking. [`Classifier::score`] is a convenience wrapper for call sites
/// where the feature length is correct by construction (e.g. features
/// produced by the same pipeline the model was trained on).
pub trait Classifier {
    /// Real-valued hotspot score of a feature vector (positive = hotspot).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::FeatureLengthMismatch`] when `features` has
    /// the wrong length for this model.
    fn try_score(&self, features: &[f32]) -> Result<f32, BaselineError>;

    /// [`Classifier::try_score`] for call sites where the feature length is
    /// infallible by construction.
    ///
    /// # Panics
    ///
    /// Panics when `features` has the wrong length.
    fn score(&self, features: &[f32]) -> f32 {
        match self.try_score(features) {
            Ok(score) => score,
            Err(e) => panic!("{e}"),
        }
    }

    /// Hard decision at threshold 0.
    ///
    /// # Panics
    ///
    /// Panics when `features` has the wrong length (see
    /// [`Classifier::score`]).
    fn predict(&self, features: &[f32]) -> bool {
        self.score(features) > 0.0
    }

    /// Hard decision at a shifted threshold.
    ///
    /// # Panics
    ///
    /// Panics when `features` has the wrong length (see
    /// [`Classifier::score`]).
    fn predict_with_threshold(&self, features: &[f32], threshold: f32) -> bool {
        self.score(features) > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f32);
    impl Classifier for Constant {
        fn try_score(&self, _features: &[f32]) -> Result<f32, BaselineError> {
            Ok(self.0)
        }
    }

    struct Picky;
    impl Classifier for Picky {
        fn try_score(&self, features: &[f32]) -> Result<f32, BaselineError> {
            if features.len() != 2 {
                return Err(BaselineError::FeatureLengthMismatch {
                    expected: 2,
                    actual: features.len(),
                });
            }
            Ok(features[0] - features[1])
        }
    }

    #[test]
    fn default_threshold_is_zero() {
        assert!(Constant(0.1).predict(&[]));
        assert!(!Constant(-0.1).predict(&[]));
        assert!(!Constant(0.0).predict(&[]));
    }

    #[test]
    fn threshold_shifts_decision() {
        let c = Constant(0.4);
        assert!(c.predict_with_threshold(&[], 0.3));
        assert!(!c.predict_with_threshold(&[], 0.5));
    }

    #[test]
    fn try_score_surfaces_length_errors() {
        assert!(matches!(
            Picky.try_score(&[1.0]),
            Err(BaselineError::FeatureLengthMismatch {
                expected: 2,
                actual: 1
            })
        ));
        assert_eq!(Picky.try_score(&[1.0, 0.25]), Ok(0.75));
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn score_wrapper_panics_on_length_error() {
        let _ = Picky.score(&[1.0]);
    }
}
