//! Online logistic detector (the ICCAD'16-style baseline).

use crate::classifier::Classifier;
use crate::BaselineError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training configuration for the online logistic detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineLogisticConfig {
    /// Learning rate.
    pub lr: f32,
    /// Passes over the training stream.
    pub epochs: usize,
    /// L2 regularisation strength.
    pub l2: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Weight multiplier applied to hotspot samples' gradient, compensating
    /// class imbalance (the ICCAD'16 detector similarly privileges recall).
    pub positive_weight: f32,
}

impl Default for OnlineLogisticConfig {
    fn default() -> Self {
        OnlineLogisticConfig {
            lr: 0.05,
            epochs: 30,
            l2: 1e-4,
            seed: 17,
            positive_weight: 2.0,
        }
    }
}

/// A logistic-regression hotspot detector trained by online SGD over CCS
/// features.
///
/// Stands in for the ICCAD'16 online detector (ref. 5): same feature family and
/// online-update regime. [`OnlineLogistic::update`] performs the
/// incremental updates that give the approach its name.
///
/// # Examples
///
/// ```
/// use hotspot_baselines::{Classifier, OnlineLogistic, OnlineLogisticConfig};
///
/// # fn main() -> Result<(), hotspot_baselines::BaselineError> {
/// let samples = vec![vec![0.0f32], vec![0.2], vec![0.8], vec![1.0]];
/// let labels = vec![false, false, true, true];
/// let config = OnlineLogisticConfig {
///     epochs: 200,
///     positive_weight: 1.0,
///     ..OnlineLogisticConfig::default()
/// };
/// let model = OnlineLogistic::fit(&samples, &labels, &config)?;
/// assert!(model.predict(&[0.95]));
/// assert!(!model.predict(&[0.05]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineLogistic {
    weights: Vec<f32>,
    bias: f32,
    lr: f32,
    l2: f32,
    positive_weight: f32,
}

impl OnlineLogistic {
    /// Trains from scratch over the full stream.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::DegenerateTrainingSet`] for empty or
    /// single-class data, [`BaselineError::LabelCountMismatch`] when
    /// `labels` does not pair one label with each sample, and
    /// [`BaselineError::FeatureLengthMismatch`] for ragged features.
    pub fn fit(
        samples: &[Vec<f32>],
        labels: &[bool],
        config: &OnlineLogisticConfig,
    ) -> Result<Self, BaselineError> {
        if samples.is_empty() {
            return Err(BaselineError::DegenerateTrainingSet("no samples"));
        }
        if labels.len() != samples.len() {
            return Err(BaselineError::LabelCountMismatch {
                samples: samples.len(),
                labels: labels.len(),
            });
        }
        if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
            return Err(BaselineError::DegenerateTrainingSet("single-class labels"));
        }
        let dim = samples[0].len();
        for s in samples {
            if s.len() != dim {
                return Err(BaselineError::FeatureLengthMismatch {
                    expected: dim,
                    actual: s.len(),
                });
            }
        }
        let mut model = OnlineLogistic {
            weights: vec![0.0; dim],
            bias: 0.0,
            lr: config.lr,
            l2: config.l2,
            positive_weight: config.positive_weight,
        };
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                model.update(&samples[i], labels[i]);
            }
        }
        Ok(model)
    }

    /// One online SGD update on a single labelled instance — the
    /// incremental-learning entry point.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training dimension.
    pub fn update(&mut self, features: &[f32], hotspot: bool) {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature length mismatch: expected {}, got {}",
            self.weights.len(),
            features.len()
        );
        let y = if hotspot { 1.0f32 } else { 0.0 };
        let p = sigmoid(self.raw_score(features));
        let weight = if hotspot { self.positive_weight } else { 1.0 };
        let g = (p - y) * weight;
        for (w, &x) in self.weights.iter_mut().zip(features.iter()) {
            *w -= self.lr * (g * x + self.l2 * *w);
        }
        self.bias -= self.lr * g;
    }

    /// Feature dimension.
    pub fn feature_len(&self) -> usize {
        self.weights.len()
    }

    fn raw_score(&self, features: &[f32]) -> f32 {
        let mut acc = self.bias;
        for (w, &x) in self.weights.iter().zip(features.iter()) {
            acc += w * x;
        }
        acc
    }
}

impl Classifier for OnlineLogistic {
    /// The logit (log-odds) of being a hotspot; 0 corresponds to p = 0.5.
    fn try_score(&self, features: &[f32]) -> Result<f32, BaselineError> {
        if features.len() != self.weights.len() {
            return Err(BaselineError::FeatureLengthMismatch {
                expected: self.weights.len(),
                actual: features.len(),
            });
        }
        Ok(self.raw_score(features))
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_sets() {
        let cfg = OnlineLogisticConfig::default();
        assert!(OnlineLogistic::fit(&[], &[], &cfg).is_err());
        let s = vec![vec![0.0f32], vec![1.0]];
        assert!(OnlineLogistic::fit(&s, &[false, false], &cfg).is_err());
        // Regression: one label for two samples used to panic on labels[i].
        assert_eq!(
            OnlineLogistic::fit(&s, &[true], &cfg),
            Err(BaselineError::LabelCountMismatch {
                samples: 2,
                labels: 1
            })
        );
    }

    #[test]
    fn learns_linear_boundary() {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let x = i as f32 / 50.0;
            samples.push(vec![x, 1.0 - x]);
            labels.push(x > 0.5);
        }
        let m = OnlineLogistic::fit(&samples, &labels, &OnlineLogisticConfig::default()).unwrap();
        let acc = samples
            .iter()
            .zip(&labels)
            .filter(|(s, &l)| m.predict(s) == l)
            .count();
        assert!(acc >= 45, "accuracy {acc}/50");
    }

    #[test]
    fn online_update_moves_decision() {
        let samples = vec![vec![0.0f32], vec![1.0]];
        let labels = vec![false, true];
        let mut m = OnlineLogistic::fit(
            &samples,
            &labels,
            &OnlineLogisticConfig {
                epochs: 5,
                ..OnlineLogisticConfig::default()
            },
        )
        .unwrap();
        let before = m.score(&[0.5]);
        // Stream several hotspot observations at 0.5.
        for _ in 0..50 {
            m.update(&[0.5], true);
        }
        assert!(
            m.score(&[0.5]) > before,
            "online updates must shift the score"
        );
    }

    #[test]
    fn positive_weight_biases_toward_recall() {
        // Imbalanced data: 1 hotspot vs many non-hotspots at the same point
        // in feature space; a recall-weighted model should flag it.
        let mut samples = vec![vec![0.5f32]];
        let mut labels = vec![true];
        for _ in 0..3 {
            samples.push(vec![0.5]);
            labels.push(false);
        }
        let balanced = OnlineLogistic::fit(
            &samples,
            &labels,
            &OnlineLogisticConfig {
                positive_weight: 1.0,
                ..OnlineLogisticConfig::default()
            },
        )
        .unwrap();
        let weighted = OnlineLogistic::fit(
            &samples,
            &labels,
            &OnlineLogisticConfig {
                positive_weight: 4.0,
                ..OnlineLogisticConfig::default()
            },
        )
        .unwrap();
        assert!(weighted.score(&[0.5]) > balanced.score(&[0.5]));
    }

    #[test]
    fn deterministic_given_seed() {
        let samples = vec![vec![0.1f32], vec![0.9], vec![0.2], vec![0.8]];
        let labels = vec![false, true, false, true];
        let cfg = OnlineLogisticConfig::default();
        let a = OnlineLogistic::fit(&samples, &labels, &cfg).unwrap();
        let b = OnlineLogistic::fit(&samples, &labels, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn update_checks_dimension() {
        let samples = vec![vec![0.1f32, 0.2], vec![0.9, 0.8]];
        let mut m = OnlineLogistic::fit(&samples, &[false, true], &OnlineLogisticConfig::default())
            .unwrap();
        m.update(&[0.5], true);
    }
}
