//! A calibrated AdaBoost operating point, with durable serialisation.
//!
//! A cascade prefilter is more than a trained ensemble: it is an ensemble
//! *plus* the decision threshold on its signed margin that was calibrated
//! (on held-out data) to a target false-negative rate. This module bundles
//! the two — with the calibration provenance — and serialises the bundle
//! **bit-exactly**, so a reloaded prefilter clears and forwards exactly the
//! same windows as the one that was calibrated.
//!
//! # File format (`hscal`, version 1)
//!
//! A UTF-8 text file of `key value` lines. Floating-point values are
//! written as the hexadecimal IEEE-754 bit pattern (`f32`/`f64` as noted),
//! not as decimal strings — round-tripping decimals can perturb the margin
//! comparison at the calibrated operating point. The final `crc` line
//! holds a CRC-32 (IEEE) over every preceding byte, so corruption is
//! reported instead of silently loading a different operating point.
//!
//! ```text
//! hscal 1
//! feature_len 144
//! threshold 0x3e4ccccd            (f32 bits: calibrated margin threshold)
//! target_fnr 0x3f847ae147ae147b   (f64 bits)
//! achieved_fnr 0x0000000000000000 (f64 bits)
//! stumps 2
//! stump 0x3fe0000000000000 5 0x3e4ccccd 0x3f800000
//! stump 0x3fd0000000000000 7 0xbdcccccd 0xbf800000
//! crc 0x1a2b3c4d
//! ```
//!
//! Each `stump` line is `alpha(f64 bits) feature threshold(f32 bits)
//! polarity(f32 bits)` in boosting order.

use crate::adaboost::AdaBoost;
use crate::classifier::Classifier;
use crate::stump::DecisionStump;
use crate::BaselineError;

/// Serialisation format version written by [`CalibratedAdaBoost::to_bytes`].
const VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected) — bitwise, self-contained.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// An [`AdaBoost`] ensemble pinned to a calibrated margin threshold.
///
/// The decision is `margin > threshold` — a sample whose signed ensemble
/// margin clears the threshold is *flagged* (forwarded to the next cascade
/// stage); one at or below it is *cleared*. The threshold is chosen on
/// held-out data so the flagged set misses at most `target_fnr` of true
/// hotspots; `achieved_fnr` records what the sweep actually measured there.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedAdaBoost {
    model: AdaBoost,
    threshold: f32,
    target_fnr: f64,
    achieved_fnr: f64,
}

impl CalibratedAdaBoost {
    /// Bundles a trained ensemble with its calibrated operating point.
    pub fn new(model: AdaBoost, threshold: f32, target_fnr: f64, achieved_fnr: f64) -> Self {
        CalibratedAdaBoost {
            model,
            threshold,
            target_fnr,
            achieved_fnr,
        }
    }

    /// The underlying ensemble.
    pub fn model(&self) -> &AdaBoost {
        &self.model
    }

    /// The calibrated margin threshold (decision is `margin > threshold`).
    #[inline]
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The false-negative rate the calibration targeted.
    #[inline]
    pub fn target_fnr(&self) -> f64 {
        self.target_fnr
    }

    /// The false-negative rate measured on the held-out calibration split.
    #[inline]
    pub fn achieved_fnr(&self) -> f64 {
        self.achieved_fnr
    }

    /// Overrides the operating point (e.g. to re-pick a threshold from a
    /// sweep without retraining, or to force an all-pass prefilter with
    /// `f32::NEG_INFINITY`).
    #[must_use]
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = threshold;
        self
    }

    /// Checked signed margin of a feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::FeatureLengthMismatch`] for a wrong-length
    /// vector.
    pub fn try_margin(&self, features: &[f32]) -> Result<f32, BaselineError> {
        self.model.try_score(features)
    }

    /// Whether a margin clears the calibrated threshold (is flagged for
    /// the next cascade stage).
    #[inline]
    pub fn flags(&self, margin: f32) -> bool {
        margin > self.threshold
    }

    /// Serialises the calibrated model (see the module docs for the
    /// format).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut s = format!(
            "hscal {VERSION}\nfeature_len {}\nthreshold {:#010x}\ntarget_fnr {:#018x}\nachieved_fnr {:#018x}\nstumps {}\n",
            self.model.feature_len(),
            self.threshold.to_bits(),
            self.target_fnr.to_bits(),
            self.achieved_fnr.to_bits(),
            self.model.round_count(),
        );
        for (alpha, stump) in self.model.stumps() {
            s.push_str(&format!(
                "stump {:#018x} {} {:#010x} {:#010x}\n",
                alpha.to_bits(),
                stump.feature,
                stump.threshold.to_bits(),
                stump.polarity.to_bits(),
            ));
        }
        let crc = crc32(s.as_bytes());
        s.push_str(&format!("crc {crc:#010x}\n"));
        s.into_bytes()
    }

    /// Parses bytes produced by [`CalibratedAdaBoost::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::ModelFormat`] on a malformed file, an
    /// unsupported version, a stump-count disagreement, or a checksum
    /// mismatch, and [`BaselineError::FeatureLengthMismatch`] when a stump
    /// references a feature outside the declared length.
    pub fn from_bytes(data: &[u8]) -> Result<Self, BaselineError> {
        let text = std::str::from_utf8(data)
            .map_err(|_| BaselineError::ModelFormat("file is not UTF-8".into()))?;
        let crc_at = text
            .rfind("crc ")
            .ok_or_else(|| BaselineError::ModelFormat("missing crc line".into()))?;
        let declared = parse_hex_u32("crc", text[crc_at..].split_whitespace().nth(1))?;
        let actual = crc32(&text.as_bytes()[..crc_at]);
        if declared != actual {
            return Err(BaselineError::ModelFormat(format!(
                "checksum mismatch: stored {declared:#010x}, computed {actual:#010x}"
            )));
        }
        let mut version = None;
        let mut feature_len = None;
        let mut threshold = None;
        let mut target_fnr = None;
        let mut achieved_fnr = None;
        let mut declared_stumps = None;
        let mut stumps: Vec<(f64, DecisionStump)> = Vec::new();
        for line in text[..crc_at].lines() {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("hscal") => version = Some(parse_dec("hscal", parts.next())?),
                Some("feature_len") => {
                    feature_len = Some(parse_dec("feature_len", parts.next())?);
                }
                Some("threshold") => {
                    threshold = Some(f32::from_bits(parse_hex_u32("threshold", parts.next())?));
                }
                Some("target_fnr") => {
                    target_fnr = Some(f64::from_bits(parse_hex_u64("target_fnr", parts.next())?));
                }
                Some("achieved_fnr") => {
                    achieved_fnr =
                        Some(f64::from_bits(parse_hex_u64("achieved_fnr", parts.next())?));
                }
                Some("stumps") => declared_stumps = Some(parse_dec("stumps", parts.next())?),
                Some("stump") => {
                    let alpha = f64::from_bits(parse_hex_u64("stump alpha", parts.next())?);
                    let feature = parse_dec("stump feature", parts.next())?;
                    let thr = f32::from_bits(parse_hex_u32("stump threshold", parts.next())?);
                    let polarity = f32::from_bits(parse_hex_u32("stump polarity", parts.next())?);
                    stumps.push((
                        alpha,
                        DecisionStump {
                            feature,
                            threshold: thr,
                            polarity,
                        },
                    ));
                }
                Some(other) => {
                    return Err(BaselineError::ModelFormat(format!(
                        "unknown header key '{other}'"
                    )))
                }
                None => {}
            }
        }
        match version {
            Some(VERSION) => {}
            Some(v) => {
                return Err(BaselineError::ModelFormat(format!(
                    "unsupported version {v} (expected {VERSION})"
                )))
            }
            None => return Err(BaselineError::ModelFormat("missing hscal version".into())),
        }
        let feature_len: usize =
            feature_len.ok_or_else(|| BaselineError::ModelFormat("missing feature_len".into()))?;
        let declared_stumps: usize =
            declared_stumps.ok_or_else(|| BaselineError::ModelFormat("missing stumps".into()))?;
        if stumps.len() != declared_stumps {
            return Err(BaselineError::ModelFormat(format!(
                "declared {declared_stumps} stumps, found {}",
                stumps.len()
            )));
        }
        Ok(CalibratedAdaBoost {
            model: AdaBoost::from_parts(stumps, feature_len)?,
            threshold: threshold
                .ok_or_else(|| BaselineError::ModelFormat("missing threshold".into()))?,
            target_fnr: target_fnr
                .ok_or_else(|| BaselineError::ModelFormat("missing target_fnr".into()))?,
            achieved_fnr: achieved_fnr
                .ok_or_else(|| BaselineError::ModelFormat("missing achieved_fnr".into()))?,
        })
    }
}

fn parse_dec<T: std::str::FromStr>(key: &str, v: Option<&str>) -> Result<T, BaselineError> {
    let v = v.ok_or_else(|| BaselineError::ModelFormat(format!("{key} has no value")))?;
    v.parse()
        .map_err(|_| BaselineError::ModelFormat(format!("invalid value for {key}: '{v}'")))
}

fn parse_hex_u32(key: &str, v: Option<&str>) -> Result<u32, BaselineError> {
    let v = v.ok_or_else(|| BaselineError::ModelFormat(format!("{key} has no value")))?;
    u32::from_str_radix(v.strip_prefix("0x").unwrap_or(v), 16)
        .map_err(|_| BaselineError::ModelFormat(format!("invalid value for {key}: '{v}'")))
}

fn parse_hex_u64(key: &str, v: Option<&str>) -> Result<u64, BaselineError> {
    let v = v.ok_or_else(|| BaselineError::ModelFormat(format!("{key} has no value")))?;
    u64::from_str_radix(v.strip_prefix("0x").unwrap_or(v), 16)
        .map_err(|_| BaselineError::ModelFormat(format!("invalid value for {key}: '{v}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaboost::AdaBoostConfig;

    fn sample() -> CalibratedAdaBoost {
        let samples = vec![
            vec![0.1f32, 0.9],
            vec![0.2, 0.7],
            vec![0.8, 0.2],
            vec![0.9, 0.1],
        ];
        let labels = vec![false, false, true, true];
        let model = AdaBoost::fit(
            &samples,
            &labels,
            &AdaBoostConfig {
                rounds: 8,
                ..AdaBoostConfig::default()
            },
        )
        .unwrap();
        CalibratedAdaBoost::new(model, 0.125, 0.01, 0.0)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let c = sample();
        let back = CalibratedAdaBoost::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.threshold().to_bits(), c.threshold().to_bits());
        assert_eq!(back.target_fnr().to_bits(), c.target_fnr().to_bits());
        // Scoring the reloaded model is bit-identical.
        for f in [[0.15f32, 0.8], [0.85, 0.15]] {
            assert_eq!(
                back.try_margin(&f).unwrap().to_bits(),
                c.try_margin(&f).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn nonfinite_thresholds_roundtrip() {
        // An all-pass override must survive serialisation.
        let c = sample().with_threshold(f32::NEG_INFINITY);
        let back = CalibratedAdaBoost::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.threshold(), f32::NEG_INFINITY);
        assert!(back.flags(-1.0e30));
    }

    #[test]
    fn flags_is_strictly_greater() {
        let c = sample();
        assert!(c.flags(0.126));
        assert!(!c.flags(0.125));
        assert!(!c.flags(0.124));
    }

    #[test]
    fn every_truncation_is_rejected_or_identical() {
        // Cutting only the final newline leaves the content intact, so the
        // decode legitimately succeeds — but then it must be *identical*.
        let c = sample();
        let bytes = c.to_bytes();
        for len in 0..bytes.len() {
            if let Ok(decoded) = CalibratedAdaBoost::from_bytes(&bytes[..len]) {
                assert_eq!(
                    decoded, c,
                    "truncation to {len} bytes decoded to a different model"
                );
            }
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_identical() {
        let c = sample();
        let bytes = c.to_bytes();
        for offset in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[offset] ^= bit;
                if let Ok(decoded) = CalibratedAdaBoost::from_bytes(&bad) {
                    assert_eq!(
                        decoded, c,
                        "flip at offset {offset} decoded to a different model"
                    );
                }
            }
        }
    }

    #[test]
    fn stump_count_disagreement_is_rejected() {
        let text = String::from_utf8(sample().to_bytes()).unwrap();
        // Drop one stump line but keep the declared count (and re-CRC so
        // only the count check can object).
        let crc_at = text.rfind("crc ").unwrap();
        let body: String = text[..crc_at]
            .lines()
            .filter({
                let mut dropped = false;
                move |l| {
                    if !dropped && l.starts_with("stump ") {
                        dropped = true;
                        false
                    } else {
                        true
                    }
                }
            })
            .map(|l| format!("{l}\n"))
            .collect();
        let crc = crc32(body.as_bytes());
        let bad = format!("{body}crc {crc:#010x}\n");
        let err = CalibratedAdaBoost::from_bytes(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("stumps"), "got: {err}");
    }

    #[test]
    fn out_of_range_stump_feature_is_rejected() {
        let c = sample();
        let text = String::from_utf8(c.to_bytes()).unwrap();
        let crc_at = text.rfind("crc ").unwrap();
        let body = text[..crc_at].replace("feature_len 2", "feature_len 0");
        // Same byte length, so the stump lines are untouched; re-CRC.
        let crc = crc32(body.as_bytes());
        let bad = format!("{body}crc {crc:#010x}\n");
        assert!(matches!(
            CalibratedAdaBoost::from_bytes(bad.as_bytes()),
            Err(BaselineError::FeatureLengthMismatch { .. })
        ));
    }
}
