//! AdaBoost over decision stumps (the SPIE'15-style detector).

use crate::classifier::Classifier;
use crate::stump::DecisionStump;
use crate::BaselineError;
use serde::{Deserialize, Serialize};

/// AdaBoost training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaBoostConfig {
    /// Number of boosting rounds (weak learners).
    pub rounds: usize,
    /// Start with each *class* carrying half the total sample weight
    /// instead of uniform per-sample weights. Hotspot benchmarks are
    /// heavily skewed (ICCAD: ~7 % hotspots); without this the ensemble
    /// optimises overall error and sacrifices hotspot recall — the metric
    /// the contest scores.
    pub class_balanced: bool,
}

impl Default for AdaBoostConfig {
    /// 64 rounds — enough to saturate on the density features used here —
    /// with class-balanced initial weights.
    fn default() -> Self {
        AdaBoostConfig {
            rounds: 64,
            class_balanced: true,
        }
    }
}

/// A boosted ensemble of decision stumps.
///
/// Discrete AdaBoost (Freund–Schapire): each round fits the stump
/// minimising weighted error, weights it by `α = ½ ln((1-ε)/ε)`, and
/// re-weights samples multiplicatively. The score is the signed ensemble
/// margin.
///
/// # Examples
///
/// ```
/// use hotspot_baselines::{AdaBoost, AdaBoostConfig, Classifier};
///
/// # fn main() -> Result<(), hotspot_baselines::BaselineError> {
/// let samples = vec![vec![0.1f32], vec![0.2], vec![0.8], vec![0.9]];
/// let labels = vec![false, false, true, true];
/// let model = AdaBoost::fit(&samples, &labels, &AdaBoostConfig { rounds: 4, ..AdaBoostConfig::default() })?;
/// assert!(model.predict(&[0.85]));
/// assert!(!model.predict(&[0.15]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaBoost {
    stumps: Vec<(f64, DecisionStump)>,
    feature_len: usize,
}

impl AdaBoost {
    /// Trains an ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::DegenerateTrainingSet`] when the data is
    /// empty or single-class, [`BaselineError::LabelCountMismatch`] when
    /// `labels` does not pair one label with each sample, and
    /// [`BaselineError::FeatureLengthMismatch`] when feature vectors
    /// disagree in length.
    pub fn fit(
        samples: &[Vec<f32>],
        labels: &[bool],
        config: &AdaBoostConfig,
    ) -> Result<Self, BaselineError> {
        if samples.is_empty() {
            return Err(BaselineError::DegenerateTrainingSet("no samples"));
        }
        // A short label vector would panic on `y[i]` below; a long one
        // would be silently truncated (and skew the class-balanced weight
        // initialisation, which counts positives over *all* labels).
        if labels.len() != samples.len() {
            return Err(BaselineError::LabelCountMismatch {
                samples: samples.len(),
                labels: labels.len(),
            });
        }
        if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
            return Err(BaselineError::DegenerateTrainingSet("single-class labels"));
        }
        let feature_len = samples[0].len();
        for s in samples {
            if s.len() != feature_len {
                return Err(BaselineError::FeatureLengthMismatch {
                    expected: feature_len,
                    actual: s.len(),
                });
            }
        }
        let n = samples.len();
        let y: Vec<f32> = labels.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let mut w = if config.class_balanced {
            let pos = labels.iter().filter(|&&l| l).count();
            let neg = n - pos;
            labels
                .iter()
                .map(|&l| {
                    if l {
                        0.5 / pos as f64
                    } else {
                        0.5 / neg as f64
                    }
                })
                .collect()
        } else {
            vec![1.0f64 / n as f64; n]
        };
        let mut stumps = Vec::with_capacity(config.rounds);
        for _ in 0..config.rounds {
            let (stump, err) = DecisionStump::fit(samples, &y, &w);
            let err = err.clamp(1e-10, 1.0 - 1e-10);
            if err >= 0.5 {
                break; // weak learner no better than chance: boosting is done
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            // Re-weight: wrong predictions gain weight.
            let mut sum = 0.0f64;
            for i in 0..n {
                let margin = (y[i] * stump.predict(&samples[i])) as f64;
                w[i] *= (-alpha * margin).exp();
                sum += w[i];
            }
            for wi in &mut w {
                *wi /= sum;
            }
            stumps.push((alpha, stump));
            if err < 1e-9 {
                break; // perfectly separated
            }
        }
        Ok(AdaBoost {
            stumps,
            feature_len,
        })
    }

    /// Number of weak learners in the ensemble.
    pub fn round_count(&self) -> usize {
        self.stumps.len()
    }

    /// Feature-vector length the model was trained on.
    pub fn feature_len(&self) -> usize {
        self.feature_len
    }

    /// The weighted weak learners, in boosting order.
    pub fn stumps(&self) -> &[(f64, DecisionStump)] {
        &self.stumps
    }

    /// Reassembles an ensemble from its parts (e.g. a deserialised model).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::FeatureLengthMismatch`] when a stump tests
    /// a feature index outside `feature_len` (scoring it would panic).
    pub fn from_parts(
        stumps: Vec<(f64, DecisionStump)>,
        feature_len: usize,
    ) -> Result<Self, BaselineError> {
        for (_, stump) in &stumps {
            if stump.feature >= feature_len {
                return Err(BaselineError::FeatureLengthMismatch {
                    expected: feature_len,
                    actual: stump.feature + 1,
                });
            }
        }
        Ok(AdaBoost {
            stumps,
            feature_len,
        })
    }
}

impl Classifier for AdaBoost {
    fn try_score(&self, features: &[f32]) -> Result<f32, BaselineError> {
        if features.len() != self.feature_len {
            return Err(BaselineError::FeatureLengthMismatch {
                expected: self.feature_len,
                actual: features.len(),
            });
        }
        let margin: f64 = self
            .stumps
            .iter()
            .map(|(alpha, s)| alpha * s.predict(features) as f64)
            .sum();
        Ok(margin as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval_data() -> (Vec<Vec<f32>>, Vec<bool>) {
        // Label = x ∈ (0.3, 0.7): no single stump can represent an
        // interval, but a weighted pair (plus a constant stump) can.
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let x = i as f32 / 40.0;
            samples.push(vec![x]);
            labels.push(x > 0.3 && x < 0.7);
        }
        (samples, labels)
    }

    #[test]
    fn rejects_degenerate_sets() {
        assert!(AdaBoost::fit(&[], &[], &AdaBoostConfig::default()).is_err());
        let s = vec![vec![0.0f32], vec![1.0]];
        assert!(AdaBoost::fit(&s, &[true, true], &AdaBoostConfig::default()).is_err());
        let bad = vec![vec![0.0f32], vec![1.0, 2.0]];
        assert!(matches!(
            AdaBoost::fit(&bad, &[true, false], &AdaBoostConfig::default()),
            Err(BaselineError::FeatureLengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_mismatched_label_count() {
        // Regression: a short label vector used to panic on `y[i]`
        // indexing, and a long one was silently truncated — both must be
        // reported as LabelCountMismatch.
        let s = vec![vec![0.0f32], vec![0.3], vec![0.7], vec![1.0]];
        let short = [false, true];
        assert_eq!(
            AdaBoost::fit(&s, &short, &AdaBoostConfig::default()),
            Err(BaselineError::LabelCountMismatch {
                samples: 4,
                labels: 2
            })
        );
        let long = [false, false, true, true, true, false];
        assert_eq!(
            AdaBoost::fit(&s, &long, &AdaBoostConfig::default()),
            Err(BaselineError::LabelCountMismatch {
                samples: 4,
                labels: 6
            })
        );
    }

    #[test]
    fn try_score_reports_length_mismatch() {
        let samples = vec![vec![0.0f32, 0.0], vec![1.0, 1.0]];
        let m = AdaBoost::fit(&samples, &[false, true], &AdaBoostConfig::default()).unwrap();
        assert!(matches!(
            m.try_score(&[0.5]),
            Err(BaselineError::FeatureLengthMismatch {
                expected: 2,
                actual: 1
            })
        ));
        assert_eq!(m.try_score(&[1.0, 1.0]).unwrap(), m.score(&[1.0, 1.0]));
    }

    #[test]
    fn from_parts_validates_feature_indices() {
        let samples = vec![vec![0.0f32, 0.0], vec![1.0, 1.0]];
        let m = AdaBoost::fit(&samples, &[false, true], &AdaBoostConfig::default()).unwrap();
        let rebuilt = AdaBoost::from_parts(m.stumps().to_vec(), m.feature_len()).unwrap();
        assert_eq!(rebuilt, m);
        // A stump testing feature 1 cannot score length-1 vectors.
        let stump = DecisionStump {
            feature: 1,
            threshold: 0.5,
            polarity: 1.0,
        };
        assert!(AdaBoost::from_parts(vec![(1.0, stump)], 1).is_err());
        assert!(AdaBoost::from_parts(vec![(1.0, stump)], 2).is_ok());
    }

    #[test]
    fn separable_data_learned_in_one_round() {
        let samples = vec![vec![0.0f32], vec![0.1], vec![0.9], vec![1.0]];
        let labels = vec![false, false, true, true];
        let m = AdaBoost::fit(
            &samples,
            &labels,
            &AdaBoostConfig {
                rounds: 10,
                ..AdaBoostConfig::default()
            },
        )
        .unwrap();
        assert_eq!(m.round_count(), 1, "separable: early exit after round 1");
        for (s, l) in samples.iter().zip(&labels) {
            assert_eq!(m.predict(s), *l);
        }
    }

    #[test]
    fn boosting_beats_single_stump_on_interval() {
        let (samples, labels) = interval_data();
        let one = AdaBoost::fit(
            &samples,
            &labels,
            &AdaBoostConfig {
                rounds: 1,
                ..AdaBoostConfig::default()
            },
        )
        .unwrap();
        let many = AdaBoost::fit(
            &samples,
            &labels,
            &AdaBoostConfig {
                rounds: 50,
                ..AdaBoostConfig::default()
            },
        )
        .unwrap();
        let acc = |m: &AdaBoost| {
            samples
                .iter()
                .zip(&labels)
                .filter(|(s, &l)| m.predict(s) == l)
                .count() as f64
                / samples.len() as f64
        };
        assert!(acc(&many) > acc(&one), "{} vs {}", acc(&many), acc(&one));
        assert!(acc(&many) > 0.9);
    }

    #[test]
    fn score_is_signed_margin() {
        let samples = vec![vec![0.0f32], vec![1.0]];
        let labels = vec![false, true];
        let m = AdaBoost::fit(
            &samples,
            &labels,
            &AdaBoostConfig {
                rounds: 3,
                ..AdaBoostConfig::default()
            },
        )
        .unwrap();
        assert!(m.score(&[1.0]) > 0.0);
        assert!(m.score(&[0.0]) < 0.0);
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn score_checks_length() {
        let samples = vec![vec![0.0f32, 0.0], vec![1.0, 1.0]];
        let m = AdaBoost::fit(&samples, &[false, true], &AdaBoostConfig::default()).unwrap();
        let _ = m.score(&[0.5]);
    }
}
