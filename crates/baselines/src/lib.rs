//! Prior-art hotspot detectors used as Table 2 baselines.
//!
//! Two machine-learning baselines are reimplemented from their published
//! descriptions:
//!
//! - [`adaboost`]: AdaBoost over depth-1 decision stumps on grid-density
//!   features — the SPIE'15 detector (ref. 4) ("AdaBoost classifier and
//!   simplified feature extraction").
//! - [`online`]: a logistic classifier trained by online stochastic
//!   gradient descent on CCS features, standing in for the ICCAD'16
//!   online-learning detector (ref. 5). We reproduce its *role* (a strong
//!   flattened-feature detector with online updates), not its
//!   information-theoretic feature selection.
//!
//! Both implement [`Classifier`], the shared scoring interface the
//! experiment harness evaluates; scores are real-valued with a tunable
//! decision threshold so ROC-style trade-offs can be swept.

pub mod adaboost;
pub mod calibrated;
pub mod classifier;
pub mod online;
pub mod stump;

pub use adaboost::{AdaBoost, AdaBoostConfig};
pub use calibrated::CalibratedAdaBoost;
pub use classifier::Classifier;
pub use online::{OnlineLogistic, OnlineLogisticConfig};
pub use stump::DecisionStump;

use std::error::Error;
use std::fmt;

/// Errors from baseline training and scoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The training set was empty or single-class.
    DegenerateTrainingSet(&'static str),
    /// Feature vectors disagree in length.
    FeatureLengthMismatch {
        /// Expected length.
        expected: usize,
        /// Observed length.
        actual: usize,
    },
    /// The label vector does not pair one label with each sample.
    LabelCountMismatch {
        /// Number of training samples.
        samples: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A serialised model could not be decoded.
    ModelFormat(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::DegenerateTrainingSet(why) => {
                write!(f, "degenerate training set: {why}")
            }
            BaselineError::FeatureLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "feature length mismatch: expected {expected}, got {actual}"
                )
            }
            BaselineError::LabelCountMismatch { samples, labels } => {
                write!(
                    f,
                    "label count mismatch: {labels} labels for {samples} samples"
                )
            }
            BaselineError::ModelFormat(why) => write!(f, "model format: {why}"),
        }
    }
}

impl Error for BaselineError {}
