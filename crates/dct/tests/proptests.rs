//! Property-based tests for the spectral substrate.

use hotspot_dct::{
    blocks, dct1d, extract_feature_tensor, reconstruct_image, zigzag_indices, zigzag_scan,
    zigzag_unscan, Dct2d, FeatureTensorSpec,
};
use hotspot_geometry::Grid;
use proptest::prelude::*;

fn arb_signal(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dct1d_roundtrip(v in (1usize..32).prop_flat_map(arb_signal)) {
        let back = dct1d::dct3(&dct1d::dct2(&v).unwrap()).unwrap();
        for (a, b) in v.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn dct1d_preserves_energy(v in (1usize..32).prop_flat_map(arb_signal)) {
        let c = dct1d::dct2(&v).unwrap();
        let ev: f64 = v.iter().map(|&x| (x as f64).powi(2)).sum();
        let ec: f64 = c.iter().map(|&x| (x as f64).powi(2)).sum();
        prop_assert!((ev - ec).abs() <= 1e-4 * ev.max(1.0));
    }

    #[test]
    fn dct2d_roundtrip(
        (b, v) in (1usize..14).prop_flat_map(|b| (Just(b), arb_signal(b * b)))
    ) {
        let plan = Dct2d::new(b).unwrap();
        let img = Grid::from_vec(b, b, v);
        let back = plan.inverse(&plan.forward(&img).unwrap()).unwrap();
        for (a, c) in img.iter().zip(back.iter()) {
            prop_assert!((a - c).abs() < 1e-3);
        }
    }

    #[test]
    fn fast_dct_matches_naive(
        (b, v) in (1usize..10).prop_flat_map(|b| (Just(b), arb_signal(b * b)))
    ) {
        let plan = Dct2d::new(b).unwrap();
        let img = Grid::from_vec(b, b, v);
        let fast = plan.forward(&img).unwrap();
        let slow = plan.forward_naive(&img).unwrap();
        for (a, c) in fast.iter().zip(slow.iter()) {
            prop_assert!((a - c).abs() < 1e-3);
        }
    }

    #[test]
    fn zigzag_is_permutation(n in 1usize..20) {
        let idx = zigzag_indices(n);
        prop_assert_eq!(idx.len(), n * n);
        let mut seen = vec![false; n * n];
        for (x, y) in idx {
            prop_assert!(!seen[y * n + x]);
            seen[y * n + x] = true;
        }
    }

    #[test]
    fn zigzag_roundtrip(
        (n, v) in (1usize..12).prop_flat_map(|n| (Just(n), arb_signal(n * n)))
    ) {
        let g = Grid::from_vec(n, n, v);
        prop_assert_eq!(zigzag_unscan(&zigzag_scan(&g), n), g);
    }

    #[test]
    fn split_join_roundtrip(
        (n, b, v) in (1usize..5, 1usize..5).prop_flat_map(|(n, b)| {
            (Just(n), Just(b), arb_signal(n * n * b * b))
        })
    ) {
        let img = Grid::from_vec(n * b, n * b, v);
        let bs = blocks::split_blocks(&img, n).unwrap();
        prop_assert_eq!(blocks::join_blocks(&bs, n).unwrap(), img);
    }

    #[test]
    fn full_tensor_reconstruction_is_lossless(
        (n, b, v) in (1usize..4, 2usize..5).prop_flat_map(|(n, b)| {
            (Just(n), Just(b), proptest::collection::vec(0.0f32..1.0, n * n * b * b))
        })
    ) {
        let img = Grid::from_vec(n * b, n * b, v);
        let spec = FeatureTensorSpec::new(n, b * b).unwrap();
        let t = extract_feature_tensor(&img, &spec).unwrap();
        let back = reconstruct_image(&t, b).unwrap();
        for (a, c) in img.iter().zip(back.iter()) {
            prop_assert!((a - c).abs() < 1e-3);
        }
    }

    #[test]
    fn truncation_never_increases_energy(
        (n, b, v) in (1usize..3, 2usize..5).prop_flat_map(|(n, b)| {
            (Just(n), Just(b), proptest::collection::vec(0.0f32..1.0, n * n * b * b))
        })
    ) {
        // Energy of the kept coefficients is bounded by total image energy
        // (Parseval + truncation).
        let img = Grid::from_vec(n * b, n * b, v);
        let spec = FeatureTensorSpec::new(n, (b * b).min(3)).unwrap();
        let t = extract_feature_tensor(&img, &spec).unwrap();
        let kept: f64 = t.as_slice().iter().map(|&x| (x as f64).powi(2)).sum();
        let total: f64 = img.iter().map(|&x| (x as f64).powi(2)).sum();
        prop_assert!(kept <= total + 1e-3);
    }
}
