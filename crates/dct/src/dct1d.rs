//! Orthonormal 1-D DCT-II and its inverse (DCT-III).

use crate::DctError;

/// Forward orthonormal DCT-II of `input`, appended into a fresh vector.
///
/// `output[k] = s(k) * Σ_x input[x] cos(π (x + ½) k / N)` with
/// `s(0) = √(1/N)`, `s(k>0) = √(2/N)`, so the transform matrix is orthogonal
/// and [`dct3`] is its exact inverse.
///
/// # Errors
///
/// Returns [`DctError::ZeroDimension`] for empty input.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hotspot_dct::DctError> {
/// let x = [1.0f32, 2.0, 3.0, 4.0];
/// let c = hotspot_dct::dct1d::dct2(&x)?;
/// let y = hotspot_dct::dct1d::dct3(&c)?;
/// for (a, b) in x.iter().zip(y.iter()) {
///     assert!((a - b).abs() < 1e-5);
/// }
/// # Ok(())
/// # }
/// ```
pub fn dct2(input: &[f32]) -> Result<Vec<f32>, DctError> {
    let n = input.len();
    if n == 0 {
        return Err(DctError::ZeroDimension);
    }
    let nf = n as f64;
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = 0.0f64;
        for (x, &v) in input.iter().enumerate() {
            acc += v as f64 * (std::f64::consts::PI * (x as f64 + 0.5) * k as f64 / nf).cos();
        }
        let scale = if k == 0 {
            (1.0 / nf).sqrt()
        } else {
            (2.0 / nf).sqrt()
        };
        out.push((acc * scale) as f32);
    }
    Ok(out)
}

/// Inverse of [`dct2`] (the orthonormal DCT-III).
///
/// # Errors
///
/// Returns [`DctError::ZeroDimension`] for empty input.
pub fn dct3(input: &[f32]) -> Result<Vec<f32>, DctError> {
    let n = input.len();
    if n == 0 {
        return Err(DctError::ZeroDimension);
    }
    let nf = n as f64;
    let mut out = Vec::with_capacity(n);
    for x in 0..n {
        let mut acc = 0.0f64;
        for (k, &v) in input.iter().enumerate() {
            let scale = if k == 0 {
                (1.0 / nf).sqrt()
            } else {
                (2.0 / nf).sqrt()
            };
            acc +=
                scale * v as f64 * (std::f64::consts::PI * (x as f64 + 0.5) * k as f64 / nf).cos();
        }
        out.push(acc as f32);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_errors() {
        assert_eq!(dct2(&[]), Err(DctError::ZeroDimension));
        assert_eq!(dct3(&[]), Err(DctError::ZeroDimension));
    }

    #[test]
    fn constant_signal_has_only_dc() {
        let c = dct2(&[3.0; 8]).unwrap();
        // DC = 3 * 8 * sqrt(1/8) = 3*sqrt(8)
        assert!((c[0] as f64 - 3.0 * 8.0f64.sqrt()).abs() < 1e-5);
        for &v in &c[1..] {
            assert!(v.abs() < 1e-5);
        }
    }

    #[test]
    fn roundtrip_random() {
        let x: Vec<f32> = (0..16).map(|i| ((i * 37 + 5) % 11) as f32 - 5.0).collect();
        let y = dct3(&dct2(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
        let c = dct2(&x).unwrap();
        let ex: f64 = x.iter().map(|&v| (v as f64).powi(2)).sum();
        let ec: f64 = c.iter().map(|&v| (v as f64).powi(2)).sum();
        assert!((ex - ec).abs() < 1e-6 * ex.max(1.0));
    }

    #[test]
    fn single_element_is_identity() {
        let c = dct2(&[5.0]).unwrap();
        assert!((c[0] - 5.0).abs() < 1e-6);
        let y = dct3(&c).unwrap();
        assert!((y[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn linearity() {
        let a = [1.0f32, -2.0, 0.5, 4.0];
        let b = [0.0f32, 1.0, -1.0, 2.0];
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ca = dct2(&a).unwrap();
        let cb = dct2(&b).unwrap();
        let cs = dct2(&sum).unwrap();
        for i in 0..4 {
            assert!((cs[i] - (ca[i] + cb[i])).abs() < 1e-5);
        }
    }
}
