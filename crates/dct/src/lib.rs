//! Spectral substrate: DCT transforms and the DAC'17 *feature tensor*.
//!
//! The paper's feature tensor (Section 3) converts a rasterised layout clip
//! into a compact `n × n × k` hyper-image:
//!
//! 1. divide the clip image into `n × n` blocks ([`blocks`]);
//! 2. apply a 2-D DCT to each block ([`dct2d`]);
//! 3. zig-zag scan the coefficients ([`zigzag`]);
//! 4. keep only the first `k` coefficients per block ([`tensor`]).
//!
//! Because the DCT concentrates Manhattan-layout energy in the low
//! frequencies, truncation loses little information, and the blockwise
//! arrangement preserves the spatial relationship between sub-regions — the
//! property that makes the representation compatible with a CNN.
//!
//! This crate uses the *orthonormal* DCT-II/DCT-III pair (the paper's
//! Eq. (1) is the unnormalised DCT-II; orthonormal scaling changes
//! coefficients by a constant per-row factor only and keeps the transform an
//! exact isometry, which is numerically kinder to network training).
//!
//! # Examples
//!
//! ```
//! use hotspot_dct::{FeatureTensorSpec, extract_feature_tensor, reconstruct_image};
//! use hotspot_geometry::Grid;
//!
//! # fn main() -> Result<(), hotspot_dct::DctError> {
//! // A 24×24 image split into a 12×12 grid of 2×2 blocks, keeping all 4
//! // coefficients per block: reconstruction is exact.
//! let img = Grid::from_vec(24, 24, (0..24 * 24).map(|v| (v % 7) as f32).collect());
//! let spec = FeatureTensorSpec::new(12, 4)?;
//! let tensor = extract_feature_tensor(&img, &spec)?;
//! let back = reconstruct_image(&tensor, 2)?;
//! for (a, b) in img.iter().zip(back.iter()) {
//!     assert!((a - b).abs() < 1e-4);
//! }
//! # Ok(())
//! # }
//! ```

pub mod blocks;
pub mod dct1d;
pub mod dct2d;
pub mod tensor;
pub mod zigzag;

pub use dct2d::Dct2d;
pub use tensor::{
    extract_feature_tensor, reconstruct_image, reconstruction_rmse, BlockDctPlan, FeatureTensor,
    FeatureTensorSpec,
};
pub use zigzag::{zigzag_indices, zigzag_scan, zigzag_unscan};

use std::error::Error;
use std::fmt;

/// Errors from DCT and feature-tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DctError {
    /// A transform or spec dimension was zero.
    ZeroDimension,
    /// An image's dimensions are incompatible with the requested block grid.
    BlockMismatch {
        /// Image width in pixels.
        width: usize,
        /// Image height in pixels.
        height: usize,
        /// Requested blocks per axis.
        grid_dim: usize,
    },
    /// More coefficients were requested than a block contains.
    TooManyCoefficients {
        /// Requested coefficient count `k`.
        requested: usize,
        /// Block capacity `B × B`.
        available: usize,
    },
}

impl fmt::Display for DctError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DctError::ZeroDimension => write!(f, "transform dimension must be nonzero"),
            DctError::BlockMismatch {
                width,
                height,
                grid_dim,
            } => write!(
                f,
                "image {width}x{height} cannot be split into a {grid_dim}x{grid_dim} block grid"
            ),
            DctError::TooManyCoefficients {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} coefficients but block holds only {available}"
            ),
        }
    }
}

impl Error for DctError {}
