//! 2-D DCT via a precomputed orthonormal basis matrix.
//!
//! The naive 2-D DCT is O(B⁴) per block; the separable form used here —
//! `D = C · X · Cᵀ` with a precomputed basis `C` — is O(B³) and vectorises
//! well, which matters because feature extraction runs over every block of
//! every clip in a benchmark (the criterion bench `dct` quantifies the gap).

use crate::DctError;
use hotspot_geometry::Grid;

/// A reusable 2-D DCT plan for `size × size` blocks.
///
/// Construct once per block size and reuse across blocks/clips: the basis
/// matrix costs O(B²) memory and its construction is amortised away.
///
/// # Examples
///
/// ```
/// use hotspot_dct::Dct2d;
/// use hotspot_geometry::Grid;
///
/// # fn main() -> Result<(), hotspot_dct::DctError> {
/// let plan = Dct2d::new(8)?;
/// let block = Grid::filled(8, 8, 1.0f32);
/// let coeffs = plan.forward(&block)?;
/// assert!((coeffs[(0, 0)] - 8.0).abs() < 1e-4); // DC = mean * B
/// let back = plan.inverse(&coeffs)?;
/// assert!((back[(3, 3)] - 1.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dct2d {
    size: usize,
    /// Row-major basis: `basis[k * size + x] = s(k) cos(π (x+½) k / B)`.
    basis: Vec<f32>,
}

impl Dct2d {
    /// Builds a plan for `size × size` blocks.
    ///
    /// # Errors
    ///
    /// Returns [`DctError::ZeroDimension`] if `size == 0`.
    pub fn new(size: usize) -> Result<Self, DctError> {
        if size == 0 {
            return Err(DctError::ZeroDimension);
        }
        let nf = size as f64;
        let mut basis = vec![0.0f32; size * size];
        for k in 0..size {
            let scale = if k == 0 {
                (1.0 / nf).sqrt()
            } else {
                (2.0 / nf).sqrt()
            };
            for x in 0..size {
                basis[k * size + x] = (scale
                    * (std::f64::consts::PI * (x as f64 + 0.5) * k as f64 / nf).cos())
                    as f32;
            }
        }
        Ok(Dct2d { size, basis })
    }

    /// Block size this plan transforms.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Forward 2-D DCT-II: `D = C · X · Cᵀ`.
    ///
    /// Output layout matches the paper's Figure 1: `coeffs[(m, n)]` indexes
    /// horizontal frequency `m`, vertical frequency `n`; `(0, 0)` is DC.
    ///
    /// # Errors
    ///
    /// Returns [`DctError::BlockMismatch`] if `block` is not `size × size`.
    pub fn forward(&self, block: &Grid<f32>) -> Result<Grid<f32>, DctError> {
        self.check(block)?;
        // tmp = X · Cᵀ   (transform rows)
        let tmp = self.rows_times_basis_t(block.as_slice());
        // out = C · tmp  (transform columns)
        Ok(Grid::from_vec(self.size, self.size, self.basis_times(&tmp)))
    }

    /// Inverse 2-D DCT (orthonormal DCT-III): `X = Cᵀ · D · C`.
    ///
    /// # Errors
    ///
    /// Returns [`DctError::BlockMismatch`] if `coeffs` is not `size × size`.
    pub fn inverse(&self, coeffs: &Grid<f32>) -> Result<Grid<f32>, DctError> {
        self.check(coeffs)?;
        // tmp = D · C
        let tmp = self.rows_times_basis(coeffs.as_slice());
        // out = Cᵀ · tmp
        Ok(Grid::from_vec(
            self.size,
            self.size,
            self.basis_t_times(&tmp),
        ))
    }

    fn check(&self, g: &Grid<f32>) -> Result<(), DctError> {
        if g.width() != self.size || g.height() != self.size {
            return Err(DctError::BlockMismatch {
                width: g.width(),
                height: g.height(),
                grid_dim: self.size,
            });
        }
        Ok(())
    }

    /// `out[r][k] = Σ_x m[r][x] * basis[k][x]`  (i.e. M · Cᵀ)
    fn rows_times_basis_t(&self, m: &[f32]) -> Vec<f32> {
        let b = self.size;
        let mut out = vec![0.0f32; b * b];
        for r in 0..b {
            let row = &m[r * b..(r + 1) * b];
            let orow = &mut out[r * b..(r + 1) * b];
            for k in 0..b {
                let basis_row = &self.basis[k * b..(k + 1) * b];
                let mut acc = 0.0f32;
                for x in 0..b {
                    acc += row[x] * basis_row[x];
                }
                orow[k] = acc;
            }
        }
        out
    }

    /// `out[r][c] = Σ_x m[r][x] * basis[x][c]`  (i.e. M · C)
    fn rows_times_basis(&self, m: &[f32]) -> Vec<f32> {
        let b = self.size;
        let mut out = vec![0.0f32; b * b];
        for r in 0..b {
            let row = &m[r * b..(r + 1) * b];
            let orow = &mut out[r * b..(r + 1) * b];
            for (x, &v) in row.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                let basis_row = &self.basis[x * b..(x + 1) * b];
                for c in 0..b {
                    orow[c] += v * basis_row[c];
                }
            }
        }
        out
    }

    /// `out[k][c] = Σ_r basis[k][r] * m[r][c]`  (i.e. C · M)
    fn basis_times(&self, m: &[f32]) -> Vec<f32> {
        let b = self.size;
        let mut out = vec![0.0f32; b * b];
        for k in 0..b {
            let basis_row = &self.basis[k * b..(k + 1) * b];
            let orow = &mut out[k * b..(k + 1) * b];
            for (r, &w) in basis_row.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let mrow = &m[r * b..(r + 1) * b];
                for c in 0..b {
                    orow[c] += w * mrow[c];
                }
            }
        }
        out
    }

    /// `out[x][c] = Σ_k basis[k][x] * m[k][c]`  (i.e. Cᵀ · M)
    fn basis_t_times(&self, m: &[f32]) -> Vec<f32> {
        let b = self.size;
        let mut out = vec![0.0f32; b * b];
        for k in 0..b {
            let basis_row = &self.basis[k * b..(k + 1) * b];
            let mrow = &m[k * b..(k + 1) * b];
            for x in 0..b {
                let w = basis_row[x];
                if w == 0.0 {
                    continue;
                }
                let orow = &mut out[x * b..(x + 1) * b];
                for c in 0..b {
                    orow[c] += w * mrow[c];
                }
            }
        }
        out
    }

    /// Reference O(B⁴) forward transform straight from the paper's Eq. (1)
    /// (orthonormal scaling). Used by tests and the `dct` criterion bench to
    /// validate and measure the separable fast path.
    pub fn forward_naive(&self, block: &Grid<f32>) -> Result<Grid<f32>, DctError> {
        self.check(block)?;
        let b = self.size;
        let nf = b as f64;
        let mut out = Grid::filled(b, b, 0.0f32);
        for m in 0..b {
            for n in 0..b {
                let mut acc = 0.0f64;
                for y in 0..b {
                    for x in 0..b {
                        acc += block[(x, y)] as f64
                            * (std::f64::consts::PI * (x as f64 + 0.5) * m as f64 / nf).cos()
                            * (std::f64::consts::PI * (y as f64 + 0.5) * n as f64 / nf).cos();
                    }
                }
                let sm = if m == 0 {
                    (1.0 / nf).sqrt()
                } else {
                    (2.0 / nf).sqrt()
                };
                let sn = if n == 0 {
                    (1.0 / nf).sqrt()
                } else {
                    (2.0 / nf).sqrt()
                };
                out[(m, n)] = (acc * sm * sn) as f32;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(b: usize) -> Grid<f32> {
        Grid::from_vec(
            b,
            b,
            (0..b * b).map(|v| ((v * 13 + 7) % 17) as f32).collect(),
        )
    }

    #[test]
    fn zero_size_rejected() {
        assert_eq!(Dct2d::new(0).err(), Some(DctError::ZeroDimension));
    }

    #[test]
    fn mismatched_block_rejected() {
        let plan = Dct2d::new(4).unwrap();
        let g = Grid::filled(5, 4, 0.0f32);
        assert!(matches!(
            plan.forward(&g),
            Err(DctError::BlockMismatch { .. })
        ));
    }

    #[test]
    fn roundtrip_exact() {
        for b in [1usize, 2, 5, 10, 16] {
            let plan = Dct2d::new(b).unwrap();
            let x = ramp(b);
            let y = plan.inverse(&plan.forward(&x).unwrap()).unwrap();
            for (a, c) in x.iter().zip(y.iter()) {
                assert!((a - c).abs() < 1e-3, "b={b}: {a} vs {c}");
            }
        }
    }

    #[test]
    fn fast_path_matches_naive() {
        let plan = Dct2d::new(10).unwrap();
        let x = ramp(10);
        let fast = plan.forward(&x).unwrap();
        let slow = plan.forward_naive(&x).unwrap();
        for (a, c) in fast.iter().zip(slow.iter()) {
            assert!((a - c).abs() < 1e-3, "{a} vs {c}");
        }
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let plan = Dct2d::new(8).unwrap();
        let x = Grid::filled(8, 8, 0.5f32);
        let c = plan.forward(&x).unwrap();
        // DC of orthonormal 2-D DCT: mean * B.
        assert!((c[(0, 0)] - 0.5 * 8.0).abs() < 1e-4);
        let energy: f64 = c.iter().skip(1).map(|&v| (v as f64).powi(2)).sum();
        assert!(energy < 1e-8);
    }

    #[test]
    fn energy_preserved_2d() {
        let plan = Dct2d::new(12).unwrap();
        let x = ramp(12);
        let c = plan.forward(&x).unwrap();
        let ex: f64 = x.iter().map(|&v| (v as f64).powi(2)).sum();
        let ec: f64 = c.iter().map(|&v| (v as f64).powi(2)).sum();
        assert!((ex - ec).abs() / ex < 1e-5);
    }

    #[test]
    fn low_frequency_dominates_smooth_pattern() {
        // A half-covered block (smooth step) concentrates energy at low freq.
        let b = 10;
        let mut x = Grid::filled(b, b, 0.0f32);
        for y in 0..b {
            for xx in 0..b / 2 {
                x[(xx, y)] = 1.0;
            }
        }
        let plan = Dct2d::new(b).unwrap();
        let c = plan.forward(&x).unwrap();
        let total: f64 = c.iter().map(|&v| (v as f64).powi(2)).sum();
        // Energy in the 3x3 low-frequency corner.
        let mut low = 0.0f64;
        for m in 0..3 {
            for n in 0..3 {
                low += (c[(m, n)] as f64).powi(2);
            }
        }
        assert!(low / total > 0.9, "low-frequency share {}", low / total);
    }
}
