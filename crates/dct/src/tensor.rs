//! Feature-tensor extraction and reconstruction (the paper's Section 3).

use crate::{blocks, zigzag, Dct2d, DctError};
use hotspot_geometry::Grid;
use serde::{Deserialize, Serialize};

/// Parameters of feature-tensor extraction: an `n × n` block grid with the
/// first `k` zig-zag DCT coefficients kept per block.
///
/// The paper's reference configuration is `n = 12` (1200×1200 nm clip, 100 nm
/// blocks) with `k ≪ B×B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureTensorSpec {
    grid_dim: usize,
    coefficients: usize,
}

impl FeatureTensorSpec {
    /// Creates a spec with `grid_dim` blocks per axis keeping `coefficients`
    /// values per block.
    ///
    /// # Errors
    ///
    /// Returns [`DctError::ZeroDimension`] if either parameter is zero.
    pub fn new(grid_dim: usize, coefficients: usize) -> Result<Self, DctError> {
        if grid_dim == 0 || coefficients == 0 {
            return Err(DctError::ZeroDimension);
        }
        Ok(FeatureTensorSpec {
            grid_dim,
            coefficients,
        })
    }

    /// Blocks per axis (`n`).
    #[inline]
    pub fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    /// Kept coefficients per block (`k`).
    #[inline]
    pub fn coefficients(&self) -> usize {
        self.coefficients
    }
}

/// The paper's compressed hyper-image: `k` channels of `n × n` spatial cells.
///
/// `data` is channel-major (`[c][j][i]`, row-major within a channel), the
/// layout the CNN consumes directly; element `(i, j, c)` is the `c`-th
/// zig-zag DCT coefficient of block `(i, j)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureTensor {
    grid_dim: usize,
    coefficients: usize,
    block_size: usize,
    data: Vec<f32>,
}

impl FeatureTensor {
    /// Blocks per axis (`n`).
    #[inline]
    pub fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    /// Channels (`k`).
    #[inline]
    pub fn coefficients(&self) -> usize {
        self.coefficients
    }

    /// Pixel side length `B` of the source blocks (needed for
    /// reconstruction).
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Channel-major backing buffer of length `k * n * n`.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the tensor, returning the channel-major buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Coefficient `c` of block `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    #[inline]
    pub fn coefficient(&self, i: usize, j: usize, c: usize) -> f32 {
        assert!(i < self.grid_dim && j < self.grid_dim && c < self.coefficients);
        self.data[(c * self.grid_dim + j) * self.grid_dim + i]
    }

    /// One channel as an `n × n` grid (e.g. channel 0 is the per-block DC
    /// map — a density-like thumbnail of the clip).
    ///
    /// # Panics
    ///
    /// Panics if `c >= coefficients`.
    pub fn channel(&self, c: usize) -> Grid<f32> {
        assert!(c < self.coefficients, "channel {c} out of range");
        let n = self.grid_dim;
        Grid::from_vec(n, n, self.data[c * n * n..(c + 1) * n * n].to_vec())
    }
}

/// A reusable one-block DCT → zig-zag truncation plan.
///
/// This factors the per-block inner loop of [`extract_feature_tensor`] out
/// so callers that visit blocks in a custom order — the full-layout scan
/// cache in `hotspot-core`, which shares block coefficients between
/// overlapping windows — can transform one `B × B` block at a time while
/// staying **bit-identical** to whole-image extraction:
/// [`BlockDctPlan::coefficients_for`] performs the same [`Dct2d::forward`]
/// call and the same first-`k` zig-zag copies, in the same order.
#[derive(Debug, Clone)]
pub struct BlockDctPlan {
    block_size: usize,
    coefficients: usize,
    plan: Dct2d,
    order: Vec<(usize, usize)>,
}

impl BlockDctPlan {
    /// Creates a plan for `B × B` blocks keeping the first `coefficients`
    /// zig-zag values.
    ///
    /// # Errors
    ///
    /// - [`DctError::ZeroDimension`] if either parameter is zero.
    /// - [`DctError::TooManyCoefficients`] if `coefficients > B × B`.
    pub fn new(block_size: usize, coefficients: usize) -> Result<Self, DctError> {
        if block_size == 0 || coefficients == 0 {
            return Err(DctError::ZeroDimension);
        }
        if coefficients > block_size * block_size {
            return Err(DctError::TooManyCoefficients {
                requested: coefficients,
                available: block_size * block_size,
            });
        }
        Ok(BlockDctPlan {
            block_size,
            coefficients,
            plan: Dct2d::new(block_size)?,
            order: zigzag::zigzag_indices(block_size),
        })
    }

    /// Pixel side length `B` of the blocks this plan transforms.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Kept coefficients per block (`k`).
    #[inline]
    pub fn coefficients(&self) -> usize {
        self.coefficients
    }

    /// The first `k` zig-zag DCT coefficients of one `B × B` block.
    ///
    /// # Errors
    ///
    /// Returns [`DctError::BlockMismatch`] if `block` is not `B × B`.
    pub fn coefficients_for(&self, block: &Grid<f32>) -> Result<Vec<f32>, DctError> {
        let coeffs = self.plan.forward(block)?;
        Ok(self.order[..self.coefficients]
            .iter()
            .map(|&(x, y)| coeffs[(x, y)])
            .collect())
    }
}

/// Extracts the feature tensor of a rasterised clip image.
///
/// Implements paper Steps 1–4: block division, per-block 2-D DCT, zig-zag
/// flattening, truncation to the first `k` coefficients, reassembled with
/// spatial relationships unchanged.
///
/// # Errors
///
/// - [`DctError::BlockMismatch`] if the image is not square or not divisible
///   by the grid dimension.
/// - [`DctError::TooManyCoefficients`] if `k > B × B`.
///
/// # Examples
///
/// ```
/// use hotspot_dct::{extract_feature_tensor, FeatureTensorSpec};
/// use hotspot_geometry::Grid;
///
/// # fn main() -> Result<(), hotspot_dct::DctError> {
/// let img = Grid::filled(120, 120, 0.25f32);
/// let spec = FeatureTensorSpec::new(12, 16)?;
/// let t = extract_feature_tensor(&img, &spec)?;
/// assert_eq!((t.grid_dim(), t.coefficients(), t.block_size()), (12, 16, 10));
/// // Constant image: every block has only a DC component.
/// assert!((t.coefficient(3, 7, 0) - 0.25 * 10.0).abs() < 1e-4);
/// assert!(t.coefficient(3, 7, 1).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
pub fn extract_feature_tensor(
    image: &Grid<f32>,
    spec: &FeatureTensorSpec,
) -> Result<FeatureTensor, DctError> {
    let n = spec.grid_dim;
    let k = spec.coefficients;
    let b = blocks::block_size(image, n)?;
    if k > b * b {
        return Err(DctError::TooManyCoefficients {
            requested: k,
            available: b * b,
        });
    }
    let plan = Dct2d::new(b)?;
    let order = zigzag::zigzag_indices(b);
    let mut data = vec![0.0f32; k * n * n];
    for j in 0..n {
        for i in 0..n {
            let block = image.window(i * b, j * b, b, b);
            let coeffs = plan.forward(&block)?;
            for (c, &(x, y)) in order[..k].iter().enumerate() {
                data[(c * n + j) * n + i] = coeffs[(x, y)];
            }
        }
    }
    Ok(FeatureTensor {
        grid_dim: n,
        coefficients: k,
        block_size: b,
        data,
    })
}

/// Recovers an approximation of the original clip image from a feature
/// tensor (the paper's "reversing above procedure").
///
/// Dropped high-frequency coefficients are zero-filled, so the result is the
/// best `k`-term zig-zag approximation per block.
///
/// # Errors
///
/// Returns [`DctError::BlockMismatch`] if `block_size` disagrees with the
/// tensor's recorded block size, and [`DctError::ZeroDimension`] if zero.
pub fn reconstruct_image(tensor: &FeatureTensor, block_size: usize) -> Result<Grid<f32>, DctError> {
    if block_size == 0 {
        return Err(DctError::ZeroDimension);
    }
    if block_size != tensor.block_size {
        return Err(DctError::BlockMismatch {
            width: block_size,
            height: block_size,
            grid_dim: tensor.grid_dim,
        });
    }
    let n = tensor.grid_dim;
    let k = tensor.coefficients;
    let b = block_size;
    let plan = Dct2d::new(b)?;
    let mut block_images = Vec::with_capacity(n * n);
    let mut scan = vec![0.0f32; k];
    for j in 0..n {
        for i in 0..n {
            for (c, slot) in scan.iter_mut().enumerate() {
                *slot = tensor.data[(c * n + j) * n + i];
            }
            let coeffs = zigzag::zigzag_unscan(&scan, b);
            block_images.push(plan.inverse(&coeffs)?);
        }
    }
    blocks::join_blocks(&block_images, n)
}

/// Root-mean-square pixel error between an image and its feature-tensor
/// round trip — the information-loss metric reported by the `fig1` bench.
///
/// # Errors
///
/// Propagates extraction/reconstruction errors.
pub fn reconstruction_rmse(image: &Grid<f32>, spec: &FeatureTensorSpec) -> Result<f64, DctError> {
    let tensor = extract_feature_tensor(image, spec)?;
    let back = reconstruct_image(&tensor, tensor.block_size())?;
    let mut acc = 0.0f64;
    for (a, b) in image.iter().zip(back.iter()) {
        let d = (*a - *b) as f64;
        acc += d * d;
    }
    Ok((acc / image.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes(side: usize, period: usize) -> Grid<f32> {
        let mut g = Grid::filled(side, side, 0.0f32);
        for y in 0..side {
            for x in 0..side {
                if (x / period).is_multiple_of(2) {
                    g[(x, y)] = 1.0;
                }
            }
        }
        g
    }

    #[test]
    fn spec_validates() {
        assert!(FeatureTensorSpec::new(0, 4).is_err());
        assert!(FeatureTensorSpec::new(12, 0).is_err());
        let s = FeatureTensorSpec::new(12, 32).unwrap();
        assert_eq!((s.grid_dim(), s.coefficients()), (12, 32));
    }

    #[test]
    fn rejects_too_many_coefficients() {
        let img = Grid::filled(24, 24, 0.0f32);
        let spec = FeatureTensorSpec::new(12, 5).unwrap(); // blocks are 2x2 = 4
        assert!(matches!(
            extract_feature_tensor(&img, &spec),
            Err(DctError::TooManyCoefficients {
                requested: 5,
                available: 4
            })
        ));
    }

    #[test]
    fn full_coefficients_reconstruct_exactly() {
        let img = stripes(24, 3);
        let spec = FeatureTensorSpec::new(6, 16).unwrap(); // 4x4 blocks, keep all
        let t = extract_feature_tensor(&img, &spec).unwrap();
        let back = reconstruct_image(&t, 4).unwrap();
        for (a, b) in img.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
        assert!(reconstruction_rmse(&img, &spec).unwrap() < 1e-4);
    }

    #[test]
    fn rmse_decreases_with_more_coefficients() {
        let img = stripes(48, 5);
        let mut last = f64::INFINITY;
        for k in [1usize, 4, 16, 36, 64] {
            let spec = FeatureTensorSpec::new(6, k).unwrap(); // 8x8 blocks
            let rmse = reconstruction_rmse(&img, &spec).unwrap();
            assert!(
                rmse <= last + 1e-9,
                "rmse should be monotone nonincreasing: k={k} rmse={rmse} last={last}"
            );
            last = rmse;
        }
        assert!(last < 1e-4, "full coefficient set must be lossless");
    }

    #[test]
    fn channel_zero_is_block_dc() {
        let img = stripes(24, 24); // left half 1, right half 0... (period 24: all 1)
        let spec = FeatureTensorSpec::new(4, 2).unwrap(); // 6x6 blocks
        let t = extract_feature_tensor(&img, &spec).unwrap();
        let dc = t.channel(0);
        // All-ones image: DC per orthonormal 2-D DCT = mean * B = 6.
        for &v in dc.iter() {
            assert!((v - 6.0).abs() < 1e-4);
        }
    }

    #[test]
    fn tensor_layout_is_channel_major() {
        let img = stripes(8, 2);
        let spec = FeatureTensorSpec::new(2, 3).unwrap();
        let t = extract_feature_tensor(&img, &spec).unwrap();
        assert_eq!(t.as_slice().len(), 3 * 2 * 2);
        assert_eq!(t.coefficient(1, 0, 2), t.as_slice()[(2 * 2) * 2 + 1]);
    }

    #[test]
    fn reconstruct_checks_block_size() {
        let img = stripes(24, 3);
        let spec = FeatureTensorSpec::new(6, 4).unwrap();
        let t = extract_feature_tensor(&img, &spec).unwrap();
        assert!(reconstruct_image(&t, 5).is_err());
        assert!(reconstruct_image(&t, 0).is_err());
        assert!(reconstruct_image(&t, 4).is_ok());
    }

    #[test]
    fn block_plan_validates() {
        assert!(BlockDctPlan::new(0, 4).is_err());
        assert!(BlockDctPlan::new(4, 0).is_err());
        assert!(matches!(
            BlockDctPlan::new(2, 5),
            Err(DctError::TooManyCoefficients {
                requested: 5,
                available: 4
            })
        ));
        let p = BlockDctPlan::new(4, 6).unwrap();
        assert_eq!((p.block_size(), p.coefficients()), (4, 6));
        // Wrong block shape is rejected.
        assert!(p.coefficients_for(&Grid::filled(3, 4, 0.0f32)).is_err());
    }

    #[test]
    fn block_plan_is_bit_identical_to_whole_image_extraction() {
        let img = stripes(24, 3);
        let spec = FeatureTensorSpec::new(6, 9).unwrap(); // 4x4 blocks
        let t = extract_feature_tensor(&img, &spec).unwrap();
        let plan = BlockDctPlan::new(4, 9).unwrap();
        for j in 0..6 {
            for i in 0..6 {
                let block = img.window(i * 4, j * 4, 4, 4);
                let v = plan.coefficients_for(&block).unwrap();
                for (c, &coeff) in v.iter().enumerate() {
                    assert_eq!(
                        coeff.to_bits(),
                        t.coefficient(i, j, c).to_bits(),
                        "block ({i},{j}) channel {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn spatial_information_is_preserved() {
        // A feature the flattened baselines lose: two clips with identical
        // global density but different spatial arrangement must produce
        // different DC channels.
        let mut left = Grid::filled(24, 24, 0.0f32);
        let mut right = Grid::filled(24, 24, 0.0f32);
        for y in 0..24 {
            for x in 0..12 {
                left[(x, y)] = 1.0;
                right[(x + 12, y)] = 1.0;
            }
        }
        let spec = FeatureTensorSpec::new(4, 1).unwrap();
        let tl = extract_feature_tensor(&left, &spec).unwrap();
        let tr = extract_feature_tensor(&right, &spec).unwrap();
        assert_ne!(tl.channel(0), tr.channel(0));
        // But total DC energy (global density) matches.
        let sl: f32 = tl.channel(0).iter().sum();
        let sr: f32 = tr.channel(0).iter().sum();
        assert!((sl - sr).abs() < 1e-4);
    }
}
