//! Division of clip images into block grids (paper Step 1).

use crate::DctError;
use hotspot_geometry::Grid;

/// Splits `image` into a `grid_dim × grid_dim` array of equal square blocks,
/// returned row-major (block `(i, j)` at index `j * grid_dim + i`).
///
/// The image must be square with side divisible by `grid_dim`, mirroring the
/// paper's `B = N / n` sub-region size.
///
/// # Errors
///
/// Returns [`DctError::ZeroDimension`] if `grid_dim == 0`, or
/// [`DctError::BlockMismatch`] if the image is not square or not divisible.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::Grid;
///
/// # fn main() -> Result<(), hotspot_dct::DctError> {
/// let img = Grid::from_vec(4, 4, (0..16).map(|v| v as f32).collect());
/// let blocks = hotspot_dct::blocks::split_blocks(&img, 2)?;
/// assert_eq!(blocks.len(), 4);
/// assert_eq!(blocks[0].as_slice(), &[0.0, 1.0, 4.0, 5.0]);
/// # Ok(())
/// # }
/// ```
pub fn split_blocks(image: &Grid<f32>, grid_dim: usize) -> Result<Vec<Grid<f32>>, DctError> {
    let block = block_size(image, grid_dim)?;
    let mut out = Vec::with_capacity(grid_dim * grid_dim);
    for j in 0..grid_dim {
        for i in 0..grid_dim {
            out.push(image.window(i * block, j * block, block, block));
        }
    }
    Ok(out)
}

/// Reassembles blocks produced by [`split_blocks`] into a full image.
///
/// # Errors
///
/// Returns [`DctError::ZeroDimension`] on an empty input and
/// [`DctError::BlockMismatch`] when the block count is not a perfect square
/// of `grid_dim` or blocks disagree in size.
pub fn join_blocks(blocks: &[Grid<f32>], grid_dim: usize) -> Result<Grid<f32>, DctError> {
    if grid_dim == 0 || blocks.is_empty() {
        return Err(DctError::ZeroDimension);
    }
    if blocks.len() != grid_dim * grid_dim {
        return Err(DctError::BlockMismatch {
            width: blocks.len(),
            height: 1,
            grid_dim,
        });
    }
    let b = blocks[0].width();
    for blk in blocks {
        if blk.width() != b || blk.height() != b {
            return Err(DctError::BlockMismatch {
                width: blk.width(),
                height: blk.height(),
                grid_dim,
            });
        }
    }
    let side = b * grid_dim;
    let mut out = Grid::filled(side, side, 0.0f32);
    for j in 0..grid_dim {
        for i in 0..grid_dim {
            let blk = &blocks[j * grid_dim + i];
            for y in 0..b {
                let dst = out.row_mut(j * b + y);
                dst[i * b..(i + 1) * b].copy_from_slice(blk.row(y));
            }
        }
    }
    Ok(out)
}

/// Validates shape and returns the block side length `B = N / n`.
///
/// # Errors
///
/// Same conditions as [`split_blocks`].
pub fn block_size(image: &Grid<f32>, grid_dim: usize) -> Result<usize, DctError> {
    if grid_dim == 0 {
        return Err(DctError::ZeroDimension);
    }
    let mismatch = || DctError::BlockMismatch {
        width: image.width(),
        height: image.height(),
        grid_dim,
    };
    if image.width() != image.height()
        || !image.width().is_multiple_of(grid_dim)
        || image.is_empty()
    {
        return Err(mismatch());
    }
    Ok(image.width() / grid_dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(side: usize) -> Grid<f32> {
        Grid::from_vec(side, side, (0..side * side).map(|v| v as f32).collect())
    }

    #[test]
    fn split_join_roundtrip() {
        let im = img(12);
        for n in [1usize, 2, 3, 4, 6, 12] {
            let blocks = split_blocks(&im, n).unwrap();
            let back = join_blocks(&blocks, n).unwrap();
            assert_eq!(im, back, "grid_dim {n}");
        }
    }

    #[test]
    fn block_order_is_row_major() {
        let im = img(4);
        let blocks = split_blocks(&im, 2).unwrap();
        // Block (1, 0) = right-top quadrant in image coords (low y first).
        assert_eq!(blocks[1].as_slice(), &[2.0, 3.0, 6.0, 7.0]);
        // Block (0, 1) = second block row.
        assert_eq!(blocks[2].as_slice(), &[8.0, 9.0, 12.0, 13.0]);
    }

    #[test]
    fn rejects_non_square() {
        let g = Grid::filled(6, 4, 0.0f32);
        assert!(matches!(
            split_blocks(&g, 2),
            Err(DctError::BlockMismatch { .. })
        ));
    }

    #[test]
    fn rejects_non_divisible() {
        let g = img(10);
        assert!(matches!(
            split_blocks(&g, 3),
            Err(DctError::BlockMismatch { .. })
        ));
    }

    #[test]
    fn rejects_zero_grid() {
        let g = img(4);
        assert_eq!(split_blocks(&g, 0).err(), Some(DctError::ZeroDimension));
    }

    #[test]
    fn join_validates_count_and_sizes() {
        let blocks = split_blocks(&img(4), 2).unwrap();
        assert!(join_blocks(&blocks[..3], 2).is_err());
        let mut bad = blocks.clone();
        bad[3] = Grid::filled(3, 3, 0.0f32);
        assert!(join_blocks(&bad, 2).is_err());
    }
}
