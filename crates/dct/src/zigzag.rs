//! JPEG-style zig-zag coefficient ordering (paper Step 3, via [Wallace'92]).
//!
//! Zig-zag scanning linearises a 2-D coefficient block so that index order is
//! (roughly) ascending total frequency; truncating the tail of the scan then
//! drops the highest-frequency content first.
//!
//! [Wallace'92]: https://doi.org/10.1109/30.125072

use hotspot_geometry::Grid;

/// The zig-zag visiting order for an `n × n` block, as `(x, y)` pairs.
///
/// Starts at DC `(0, 0)`, then walks anti-diagonals alternately up-right and
/// down-left, exactly as in JPEG.
///
/// # Examples
///
/// ```
/// let order = hotspot_dct::zigzag_indices(3);
/// assert_eq!(order[0], (0, 0));
/// assert_eq!(order.len(), 9);
/// assert_eq!(order[8], (2, 2));
/// ```
pub fn zigzag_indices(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n * n);
    if n == 0 {
        return out;
    }
    for s in 0..(2 * n - 1) {
        // Anti-diagonal s: cells with x + y == s.
        let lo = s.saturating_sub(n - 1);
        let hi = s.min(n - 1);
        if s % 2 == 0 {
            // Walk from high y to low y (up-right).
            for y in (lo..=hi).rev() {
                out.push((s - y, y));
            }
        } else {
            // Walk from high x to low x (down-left).
            for x in (lo..=hi).rev() {
                out.push((x, s - x));
            }
        }
    }
    out
}

/// Flattens a square coefficient block into zig-zag order
/// (`C*` of the paper's Eq. (1)).
///
/// # Panics
///
/// Panics if `coeffs` is not square.
pub fn zigzag_scan(coeffs: &Grid<f32>) -> Vec<f32> {
    assert_eq!(
        coeffs.width(),
        coeffs.height(),
        "zig-zag needs a square block"
    );
    zigzag_indices(coeffs.width())
        .into_iter()
        .map(|(x, y)| coeffs[(x, y)])
        .collect()
}

/// Inverse of [`zigzag_scan`]: rebuilds an `n × n` block from a (possibly
/// truncated) zig-zag vector, zero-filling the missing tail.
///
/// This is the "recover an approximation of the original clip" direction of
/// the paper's feature tensor.
///
/// # Panics
///
/// Panics if `scan.len() > n * n`.
pub fn zigzag_unscan(scan: &[f32], n: usize) -> Grid<f32> {
    assert!(
        scan.len() <= n * n,
        "scan of {} values exceeds {}x{} block",
        scan.len(),
        n,
        n
    );
    let mut out = Grid::filled(n, n, 0.0f32);
    for ((x, y), &v) in zigzag_indices(n).into_iter().zip(scan.iter()) {
        out[(x, y)] = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_4x4_order() {
        // The standard JPEG zig-zag for 4x4 in (x, y):
        let expect = vec![
            (0, 0),
            (1, 0),
            (0, 1),
            (0, 2),
            (1, 1),
            (2, 0),
            (3, 0),
            (2, 1),
            (1, 2),
            (0, 3),
            (1, 3),
            (2, 2),
            (3, 1),
            (3, 2),
            (2, 3),
            (3, 3),
        ];
        assert_eq!(zigzag_indices(4), expect);
    }

    #[test]
    fn order_is_a_permutation() {
        for n in [1usize, 2, 3, 7, 12] {
            let idx = zigzag_indices(n);
            assert_eq!(idx.len(), n * n);
            let mut seen = vec![false; n * n];
            for (x, y) in idx {
                assert!(x < n && y < n);
                assert!(!seen[y * n + x], "duplicate ({x},{y})");
                seen[y * n + x] = true;
            }
        }
    }

    #[test]
    fn frequencies_mostly_ascend() {
        // Total frequency x+y never decreases by more than 0 across
        // diagonal boundaries (each diagonal groups equal x+y).
        let idx = zigzag_indices(8);
        let sums: Vec<usize> = idx.iter().map(|&(x, y)| x + y).collect();
        for w in sums.windows(2) {
            assert!(w[1] + 1 >= w[0], "frequency dropped across scan");
            assert!(w[1] <= w[0] + 1, "frequency jumped");
        }
    }

    #[test]
    fn scan_unscan_roundtrip() {
        let g = Grid::from_vec(5, 5, (0..25).map(|v| v as f32).collect());
        let s = zigzag_scan(&g);
        let back = zigzag_unscan(&s, 5);
        assert_eq!(g, back);
    }

    #[test]
    fn truncated_unscan_zero_fills() {
        let g = Grid::from_vec(3, 3, (1..=9).map(|v| v as f32).collect());
        let s = zigzag_scan(&g);
        let back = zigzag_unscan(&s[..3], 3);
        // First three in scan order survive...
        assert_eq!(back[(0, 0)], g[(0, 0)]);
        assert_eq!(back[(1, 0)], g[(1, 0)]);
        assert_eq!(back[(0, 1)], g[(0, 1)]);
        // ...everything else is zero.
        assert_eq!(back[(2, 2)], 0.0);
        assert_eq!(back[(1, 1)], 0.0);
    }

    #[test]
    fn zero_size_block() {
        assert!(zigzag_indices(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_scan_panics() {
        let _ = zigzag_unscan(&[0.0; 10], 3);
    }
}
