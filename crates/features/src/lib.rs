//! Classical flattened layout features for the baseline detectors.
//!
//! The paper compares against two prior-art feature families, both of which
//! flatten the clip into a 1-D vector and therefore discard the spatial
//! relationships the feature tensor preserves:
//!
//! - [`density`]: grid density extraction (SPIE'15 (ref. 4)) — per-block pattern
//!   density over an `n × n` division of the clip.
//! - [`ccs`]: concentric circle sampling (ICCAD'16 (ref. 5), (ref. 7)) — pixel samples
//!   along circles of increasing radius around the clip centre, capturing
//!   the radial structure light diffraction cares about.
//!
//! Both operate on the same rasterised coverage images as the rest of the
//! suite. [`kmeans`] adds k-means++ clustering over any of these feature
//! vectors — the wafer-clustering analysis ([10, 11] in the paper) that
//! inspired the spectral feature tensor.

pub mod ccs;
pub mod density;
pub mod kmeans;

pub use ccs::{ccs_feature, CcsSpec};
pub use density::{density_feature, density_feature_grid};
pub use kmeans::{KMeans, KMeansConfig, KMeansError};

use std::error::Error;
use std::fmt;

/// Errors from feature extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeatureError {
    /// The requested grid does not divide the image.
    GridMismatch {
        /// Image width in pixels.
        width: usize,
        /// Image height in pixels.
        height: usize,
        /// Requested grid dimension.
        grid_dim: usize,
    },
    /// The requested rectangular block grid does not divide the image.
    BlockGridMismatch {
        /// Image width in pixels.
        width: usize,
        /// Image height in pixels.
        height: usize,
        /// Requested number of blocks along x.
        grid_x: usize,
        /// Requested number of blocks along y.
        grid_y: usize,
    },
    /// A spec parameter was zero.
    ZeroParameter(&'static str),
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::GridMismatch {
                width,
                height,
                grid_dim,
            } => write!(
                f,
                "image {width}x{height} cannot be divided into a {grid_dim}x{grid_dim} grid"
            ),
            FeatureError::BlockGridMismatch {
                width,
                height,
                grid_x,
                grid_y,
            } => write!(
                f,
                "image {width}x{height} cannot be divided into a {grid_x}x{grid_y} block grid"
            ),
            FeatureError::ZeroParameter(name) => write!(f, "feature parameter {name} is zero"),
        }
    }
}

impl Error for FeatureError {}
