//! K-means clustering of layout feature vectors.
//!
//! The feature tensor is inspired by spectral analysis of mask patterns for
//! wafer clustering ([10, 11] in the paper). This module provides the
//! clustering side: Lloyd's algorithm with k-means++ seeding over any flat
//! feature vectors (density, CCS, or flattened feature tensors), used by
//! the `pattern_clustering` example to group layout clips into topology
//! families.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from k-means fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KMeansError {
    /// `fit` was called with no samples.
    NoSamples,
    /// `k` was zero or exceeded the sample count.
    InvalidK {
        /// Requested cluster count.
        k: usize,
        /// Number of samples provided.
        samples: usize,
    },
    /// Sample feature vectors had inconsistent lengths.
    RaggedSamples {
        /// Length of the first sample.
        expected: usize,
        /// Index of the first offending sample.
        index: usize,
        /// Its length.
        found: usize,
    },
}

impl fmt::Display for KMeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KMeansError::NoSamples => write!(f, "k-means needs at least one sample"),
            KMeansError::InvalidK { k, samples } => {
                write!(f, "k must be in 1..={samples}, got {k}")
            }
            KMeansError::RaggedSamples {
                expected,
                index,
                found,
            } => write!(
                f,
                "ragged feature vectors: sample {index} has length {found}, expected {expected}"
            ),
        }
    }
}

impl Error for KMeansError {}

/// K-means configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (squared L2).
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 4,
            max_iters: 100,
            tolerance: 1e-6,
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f32>>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Fits k-means with k-means++ seeding.
    ///
    /// Returns the fitted model and the per-sample cluster assignments.
    ///
    /// # Errors
    ///
    /// Returns [`KMeansError`] when `samples` is empty, `k` is zero or
    /// exceeds the sample count, or feature vectors are ragged.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspot_features::kmeans::{KMeans, KMeansConfig};
    /// use rand::SeedableRng;
    ///
    /// # fn main() -> Result<(), hotspot_features::kmeans::KMeansError> {
    /// let samples = vec![
    ///     vec![0.0f32, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
    ///     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
    /// ];
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let config = KMeansConfig { k: 2, ..KMeansConfig::default() };
    /// let (model, assign) = KMeans::fit(&samples, &config, &mut rng)?;
    /// assert_eq!(assign[0], assign[1]);
    /// assert_ne!(assign[0], assign[3]);
    /// assert!(model.inertia() < 0.1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn fit(
        samples: &[Vec<f32>],
        config: &KMeansConfig,
        rng: &mut StdRng,
    ) -> Result<(KMeans, Vec<usize>), KMeansError> {
        if samples.is_empty() {
            return Err(KMeansError::NoSamples);
        }
        if config.k == 0 || config.k > samples.len() {
            return Err(KMeansError::InvalidK {
                k: config.k,
                samples: samples.len(),
            });
        }
        let dim = samples[0].len();
        for (index, s) in samples.iter().enumerate() {
            if s.len() != dim {
                return Err(KMeansError::RaggedSamples {
                    expected: dim,
                    index,
                    found: s.len(),
                });
            }
        }

        let mut centroids = kmeanspp_seed(samples, config.k, rng);
        let mut assignments = vec![0usize; samples.len()];
        let mut iterations = 0usize;
        for _ in 0..config.max_iters {
            iterations += 1;
            // Assign.
            for (a, s) in assignments.iter_mut().zip(samples.iter()) {
                *a = nearest(&centroids, s).0;
            }
            // Update.
            let mut sums = vec![vec![0.0f64; dim]; config.k];
            let mut counts = vec![0usize; config.k];
            for (&a, s) in assignments.iter().zip(samples.iter()) {
                counts[a] += 1;
                for (acc, &v) in sums[a].iter_mut().zip(s.iter()) {
                    *acc += v as f64;
                }
            }
            let mut movement = 0.0f64;
            for c in 0..config.k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the farthest sample.
                    let far = samples
                        .iter()
                        .max_by(|a, b| {
                            let da = nearest(&centroids, a).1;
                            let db = nearest(&centroids, b).1;
                            da.total_cmp(&db)
                        })
                        .expect("non-empty samples");
                    centroids[c] = far.clone();
                    movement += f64::INFINITY;
                    continue;
                }
                for (j, acc) in sums[c].iter().enumerate() {
                    let new = (acc / counts[c] as f64) as f32;
                    let d = (new - centroids[c][j]) as f64;
                    movement += d * d;
                    centroids[c][j] = new;
                }
            }
            if movement < config.tolerance {
                break;
            }
        }
        // Final assignment + inertia.
        let mut inertia = 0.0f64;
        for (a, s) in assignments.iter_mut().zip(samples.iter()) {
            let (best, d) = nearest(&centroids, s);
            *a = best;
            inertia += d;
        }
        Ok((
            KMeans {
                centroids,
                inertia,
                iterations,
            },
            assignments,
        ))
    }

    /// Cluster centroids.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Sum of squared distances of samples to their centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Assigns a new sample to its nearest cluster.
    ///
    /// # Panics
    ///
    /// Panics if the feature length differs from the training dimension.
    pub fn predict(&self, sample: &[f32]) -> usize {
        assert_eq!(sample.len(), self.centroids[0].len(), "feature length");
        nearest(&self.centroids, sample).0
    }
}

fn squared_distance(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

fn nearest(centroids: &[Vec<f32>], sample: &[f32]) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_distance(c, sample);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
fn kmeanspp_seed(samples: &[Vec<f32>], k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(samples[rng.gen_range(0..samples.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = samples.iter().map(|s| nearest(&centroids, s).1).collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All remaining samples coincide with centroids; duplicate one.
            centroids.push(samples[rng.gen_range(0..samples.len())].clone());
            continue;
        }
        let mut draw = rng.gen_range(0.0..total);
        let mut chosen = samples.len() - 1;
        for (i, &d) in dists.iter().enumerate() {
            if draw < d {
                chosen = i;
                break;
            }
            draw -= d;
        }
        centroids.push(samples[chosen].clone());
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn blobs() -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for c in 0..3 {
            let centre = c as f32 * 10.0;
            for i in 0..8 {
                out.push(vec![
                    centre + (i % 3) as f32 * 0.1,
                    centre - (i % 2) as f32 * 0.1,
                ]);
            }
        }
        out
    }

    fn fit(samples: &[Vec<f32>], cfg: &KMeansConfig, rng: &mut StdRng) -> (KMeans, Vec<usize>) {
        KMeans::fit(samples, cfg, rng).expect("valid k-means input")
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let samples = blobs();
        let cfg = KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        };
        let (model, assign) = fit(&samples, &cfg, &mut rng(4));
        // All members of a blob share a cluster; blobs differ.
        for b in 0..3 {
            let first = assign[b * 8];
            for i in 0..8 {
                assert_eq!(assign[b * 8 + i], first, "blob {b} split");
            }
        }
        assert_ne!(assign[0], assign[8]);
        assert_ne!(assign[8], assign[16]);
        assert!(model.inertia() < 1.0);
    }

    #[test]
    fn k_equals_one_centroid_is_mean() {
        let samples = vec![vec![0.0f32], vec![2.0], vec![4.0]];
        let cfg = KMeansConfig {
            k: 1,
            ..KMeansConfig::default()
        };
        let (model, assign) = fit(&samples, &cfg, &mut rng(0));
        assert!(assign.iter().all(|&a| a == 0));
        assert!((model.centroids()[0][0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let samples = blobs();
        let cfg = KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        };
        let (model, assign) = fit(&samples, &cfg, &mut rng(7));
        for (s, &a) in samples.iter().zip(assign.iter()) {
            assert_eq!(model.predict(s), a);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let samples = blobs();
        let cfg = KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        };
        let (m1, a1) = fit(&samples, &cfg, &mut rng(9));
        let (m2, a2) = fit(&samples, &cfg, &mut rng(9));
        assert_eq!(m1, m2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let samples = vec![vec![1.0f32, 1.0]; 10];
        let cfg = KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        };
        let (model, _) = fit(&samples, &cfg, &mut rng(2));
        assert!(model.inertia() < 1e-9);
    }

    #[test]
    fn empty_samples_rejected() {
        let samples: Vec<Vec<f32>> = Vec::new();
        let cfg = KMeansConfig::default();
        assert_eq!(
            KMeans::fit(&samples, &cfg, &mut rng(0)).unwrap_err(),
            KMeansError::NoSamples
        );
    }

    #[test]
    fn k_zero_rejected() {
        let samples = vec![vec![0.0f32], vec![1.0]];
        let cfg = KMeansConfig {
            k: 0,
            ..KMeansConfig::default()
        };
        assert_eq!(
            KMeans::fit(&samples, &cfg, &mut rng(0)).unwrap_err(),
            KMeansError::InvalidK { k: 0, samples: 2 }
        );
    }

    #[test]
    fn k_larger_than_samples_rejected() {
        let samples = vec![vec![0.0f32]];
        let cfg = KMeansConfig {
            k: 2,
            ..KMeansConfig::default()
        };
        assert_eq!(
            KMeans::fit(&samples, &cfg, &mut rng(0)).unwrap_err(),
            KMeansError::InvalidK { k: 2, samples: 1 }
        );
    }

    #[test]
    fn ragged_features_rejected() {
        let samples = vec![vec![0.0f32], vec![0.0, 1.0]];
        let cfg = KMeansConfig {
            k: 1,
            ..KMeansConfig::default()
        };
        assert_eq!(
            KMeans::fit(&samples, &cfg, &mut rng(0)).unwrap_err(),
            KMeansError::RaggedSamples {
                expected: 1,
                index: 1,
                found: 2
            }
        );
    }

    #[test]
    fn empty_cluster_reseeds_deterministically() {
        // Nine coincident points plus one outlier with k = 3: two clusters
        // start empty and must be re-seeded from the farthest point without
        // diverging between runs.
        let mut samples = vec![vec![0.0f32, 0.0]; 9];
        samples.push(vec![100.0, 100.0]);
        let cfg = KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        };
        let (m1, a1) = fit(&samples, &cfg, &mut rng(5));
        let (m2, a2) = fit(&samples, &cfg, &mut rng(5));
        assert_eq!(m1, m2);
        assert_eq!(a1, a2);
        assert_ne!(a1[0], a1[9], "outlier should own its own cluster");
    }
}
