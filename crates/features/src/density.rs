//! Grid density extraction (SPIE'15-style).

use crate::FeatureError;
use hotspot_geometry::Grid;

/// Divides the coverage image into an `n × n` grid of blocks and returns
/// the mean density of each block, flattened row-major into a 1-D vector of
/// length `n²`.
///
/// This is the "simplified feature extraction" of the SPIE'15 AdaBoost
/// detector (ref. 4): compact, fast, but spatially lossy once flattened — the
/// deficiency the paper's feature tensor addresses.
///
/// # Errors
///
/// Returns [`FeatureError::ZeroParameter`] for `grid_dim == 0` and
/// [`FeatureError::GridMismatch`] when the image is not square or not
/// divisible by `grid_dim`.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::Grid;
///
/// # fn main() -> Result<(), hotspot_features::FeatureError> {
/// let mut img = Grid::filled(8, 8, 0.0f32);
/// for y in 0..8 {
///     for x in 0..4 {
///         img[(x, y)] = 1.0; // left half covered
///     }
/// }
/// let f = hotspot_features::density_feature(&img, 2)?;
/// assert_eq!(f, vec![1.0, 0.0, 1.0, 0.0]);
/// # Ok(())
/// # }
/// ```
pub fn density_feature(image: &Grid<f32>, grid_dim: usize) -> Result<Vec<f32>, FeatureError> {
    if grid_dim == 0 {
        return Err(FeatureError::ZeroParameter("grid_dim"));
    }
    if image.width() != image.height()
        || !image.width().is_multiple_of(grid_dim)
        || image.is_empty()
    {
        return Err(FeatureError::GridMismatch {
            width: image.width(),
            height: image.height(),
            grid_dim,
        });
    }
    density_feature_grid(image, grid_dim, grid_dim)
}

/// [`density_feature`] generalised to rectangular images: divides the image
/// into `grid_x × grid_y` blocks with independent divisors per axis and
/// returns the per-block mean densities flattened row-major (length
/// `grid_x * grid_y`).
///
/// Blocks are rectangles of `width / grid_x` by `height / grid_y` pixels,
/// so a non-square image (e.g. a raster strip spanning several scan
/// windows) no longer has to be cropped square before feature extraction.
///
/// # Errors
///
/// Returns [`FeatureError::ZeroParameter`] when either divisor is zero and
/// [`FeatureError::BlockGridMismatch`] when `grid_x` does not divide the
/// width or `grid_y` does not divide the height (including empty images).
///
/// # Examples
///
/// ```
/// use hotspot_geometry::Grid;
///
/// # fn main() -> Result<(), hotspot_features::FeatureError> {
/// let mut img = Grid::filled(6, 4, 0.0f32);
/// for y in 0..2 {
///     for x in 0..6 {
///         img[(x, y)] = 1.0; // top half covered
///     }
/// }
/// let f = hotspot_features::density_feature_grid(&img, 3, 2)?;
/// assert_eq!(f, vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
/// # Ok(())
/// # }
/// ```
pub fn density_feature_grid(
    image: &Grid<f32>,
    grid_x: usize,
    grid_y: usize,
) -> Result<Vec<f32>, FeatureError> {
    if grid_x == 0 {
        return Err(FeatureError::ZeroParameter("grid_x"));
    }
    if grid_y == 0 {
        return Err(FeatureError::ZeroParameter("grid_y"));
    }
    if image.is_empty()
        || !image.width().is_multiple_of(grid_x)
        || !image.height().is_multiple_of(grid_y)
    {
        return Err(FeatureError::BlockGridMismatch {
            width: image.width(),
            height: image.height(),
            grid_x,
            grid_y,
        });
    }
    let bw = image.width() / grid_x;
    let bh = image.height() / grid_y;
    let norm = 1.0 / (bw * bh) as f32;
    let mut out = Vec::with_capacity(grid_x * grid_y);
    for j in 0..grid_y {
        for i in 0..grid_x {
            let mut acc = 0.0f32;
            for y in 0..bh {
                let row = image.row(j * bh + y);
                for x in 0..bw {
                    acc += row[i * bw + x];
                }
            }
            out.push(acc * norm);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_image_uniform_density() {
        let img = Grid::filled(12, 12, 0.25f32);
        let f = density_feature(&img, 3).unwrap();
        assert_eq!(f.len(), 9);
        assert!(f.iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn mean_is_preserved() {
        let img = Grid::from_vec(6, 6, (0..36).map(|v| v as f32 / 36.0).collect());
        let f = density_feature(&img, 2).unwrap();
        let feature_mean: f64 = f.iter().map(|&v| v as f64).sum::<f64>() / f.len() as f64;
        assert!((feature_mean - img.mean()).abs() < 1e-6);
    }

    #[test]
    fn row_major_order() {
        let mut img = Grid::filled(4, 4, 0.0f32);
        // Fill only the top-right block (x >= 2, y < 2).
        for y in 0..2 {
            for x in 2..4 {
                img[(x, y)] = 1.0;
            }
        }
        let f = density_feature(&img, 2).unwrap();
        assert_eq!(f, vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let img = Grid::filled(10, 10, 0.0f32);
        assert!(matches!(
            density_feature(&img, 0),
            Err(FeatureError::ZeroParameter(_))
        ));
        assert!(matches!(
            density_feature(&img, 3),
            Err(FeatureError::GridMismatch { .. })
        ));
        let rect = Grid::filled(10, 8, 0.0f32);
        assert!(density_feature(&rect, 2).is_err());
    }

    #[test]
    fn rect_grid_matches_square_path() {
        let img = Grid::from_vec(6, 6, (0..36).map(|v| v as f32 / 36.0).collect());
        assert_eq!(
            density_feature(&img, 3).unwrap(),
            density_feature_grid(&img, 3, 3).unwrap()
        );
    }

    #[test]
    fn rect_grid_handles_rectangular_images() {
        // A 6x4 strip with the left third covered.
        let mut img = Grid::filled(6, 4, 0.0f32);
        for y in 0..4 {
            for x in 0..2 {
                img[(x, y)] = 1.0;
            }
        }
        let f = density_feature_grid(&img, 3, 2).unwrap();
        assert_eq!(f, vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        // Independent divisors: 1 block tall, 6 wide.
        let f = density_feature_grid(&img, 6, 1).unwrap();
        assert_eq!(f, vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn rect_grid_errors_are_precise() {
        let img = Grid::filled(6, 4, 0.0f32);
        assert!(matches!(
            density_feature_grid(&img, 0, 2),
            Err(FeatureError::ZeroParameter("grid_x"))
        ));
        assert!(matches!(
            density_feature_grid(&img, 3, 0),
            Err(FeatureError::ZeroParameter("grid_y"))
        ));
        // Failing case: divisor fits one axis but not the other.
        assert_eq!(
            density_feature_grid(&img, 4, 2),
            Err(FeatureError::BlockGridMismatch {
                width: 6,
                height: 4,
                grid_x: 4,
                grid_y: 2
            })
        );
        assert_eq!(
            density_feature_grid(&img, 3, 3),
            Err(FeatureError::BlockGridMismatch {
                width: 6,
                height: 4,
                grid_x: 3,
                grid_y: 3
            })
        );
        let empty = Grid::filled(0, 0, 0.0f32);
        assert!(density_feature_grid(&empty, 1, 1).is_err());
    }

    #[test]
    fn loses_spatial_information_after_permutation() {
        // The documented deficiency: permuting blocks changes the layout but
        // only permutes the flattened feature — a linear model cannot
        // distinguish orderings that a spatial model can.
        let mut left = Grid::filled(4, 4, 0.0f32);
        let mut right = Grid::filled(4, 4, 0.0f32);
        for y in 0..4 {
            for x in 0..2 {
                left[(x, y)] = 1.0;
                right[(x + 2, y)] = 1.0;
            }
        }
        let fl = density_feature(&left, 2).unwrap();
        let fr = density_feature(&right, 2).unwrap();
        let mut sl = fl.clone();
        let mut sr = fr.clone();
        sl.sort_by(f32::total_cmp);
        sr.sort_by(f32::total_cmp);
        assert_eq!(sl, sr, "same multiset of densities");
        assert_ne!(fl, fr, "different arrangement");
    }
}
