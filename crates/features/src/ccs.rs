//! Concentric circle sampling (CCS).

use crate::FeatureError;
use hotspot_geometry::Grid;
use serde::{Deserialize, Serialize};

/// Parameters of concentric circle sampling.
///
/// `circles` evenly-spaced radii are placed between the image centre and
/// `max_radius_frac × (side / 2)`; each circle is sampled at
/// `samples_per_circle` equally-spaced angles (plus one centre sample), and
/// pixel values are read with bilinear interpolation. This follows the CCS
/// feature of (ref. 7) used by the ICCAD'16 detector (ref. 5): radially organised
/// samples reflect the circular symmetry of the optical system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcsSpec {
    /// Number of concentric circles.
    pub circles: usize,
    /// Sample points per circle.
    pub samples_per_circle: usize,
    /// Outermost radius as a fraction of the half-side (0–1].
    pub max_radius_frac: f32,
}

impl Default for CcsSpec {
    /// 16 circles × 24 samples (385 features with the centre sample).
    fn default() -> Self {
        CcsSpec {
            circles: 16,
            samples_per_circle: 24,
            max_radius_frac: 0.95,
        }
    }
}

impl CcsSpec {
    /// Output feature length: `circles × samples_per_circle + 1`.
    pub fn feature_len(&self) -> usize {
        self.circles * self.samples_per_circle + 1
    }
}

/// Extracts the CCS feature vector of a coverage image.
///
/// # Errors
///
/// Returns [`FeatureError::ZeroParameter`] when the spec has zero circles
/// or samples, or the image is empty.
///
/// # Examples
///
/// ```
/// use hotspot_features::{ccs_feature, CcsSpec};
/// use hotspot_geometry::Grid;
///
/// # fn main() -> Result<(), hotspot_features::FeatureError> {
/// let img = Grid::filled(64, 64, 0.5f32);
/// let spec = CcsSpec::default();
/// let f = ccs_feature(&img, &spec)?;
/// assert_eq!(f.len(), spec.feature_len());
/// assert!(f.iter().all(|&v| (v - 0.5).abs() < 1e-4));
/// # Ok(())
/// # }
/// ```
pub fn ccs_feature(image: &Grid<f32>, spec: &CcsSpec) -> Result<Vec<f32>, FeatureError> {
    if spec.circles == 0 {
        return Err(FeatureError::ZeroParameter("circles"));
    }
    if spec.samples_per_circle == 0 {
        return Err(FeatureError::ZeroParameter("samples_per_circle"));
    }
    if image.is_empty() {
        return Err(FeatureError::ZeroParameter("image"));
    }
    let cx = (image.width() as f32 - 1.0) / 2.0;
    let cy = (image.height() as f32 - 1.0) / 2.0;
    let max_r = cx.min(cy) * spec.max_radius_frac;
    let mut out = Vec::with_capacity(spec.feature_len());
    out.push(bilinear(image, cx, cy));
    for c in 1..=spec.circles {
        let r = max_r * c as f32 / spec.circles as f32;
        for s in 0..spec.samples_per_circle {
            let theta = 2.0 * std::f32::consts::PI * s as f32 / spec.samples_per_circle as f32;
            let x = cx + r * theta.cos();
            let y = cy + r * theta.sin();
            out.push(bilinear(image, x, y));
        }
    }
    Ok(out)
}

/// Bilinear interpolation with edge clamping.
fn bilinear(image: &Grid<f32>, x: f32, y: f32) -> f32 {
    let w = image.width();
    let h = image.height();
    let xc = x.clamp(0.0, (w - 1) as f32);
    let yc = y.clamp(0.0, (h - 1) as f32);
    let x0 = xc.floor() as usize;
    let y0 = yc.floor() as usize;
    let x1 = (x0 + 1).min(w - 1);
    let y1 = (y0 + 1).min(h - 1);
    let fx = xc - x0 as f32;
    let fy = yc - y0 as f32;
    let v00 = image[(x0, y0)];
    let v10 = image[(x1, y0)];
    let v01 = image[(x0, y1)];
    let v11 = image[(x1, y1)];
    v00 * (1.0 - fx) * (1.0 - fy) + v10 * fx * (1.0 - fy) + v01 * (1.0 - fx) * fy + v11 * fx * fy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_length_matches_spec() {
        let spec = CcsSpec {
            circles: 4,
            samples_per_circle: 8,
            max_radius_frac: 0.9,
        };
        let f = ccs_feature(&Grid::filled(32, 32, 0.0f32), &spec).unwrap();
        assert_eq!(f.len(), 33);
        assert_eq!(spec.feature_len(), 33);
    }

    #[test]
    fn rotational_symmetry_gives_constant_circles() {
        // A centred radial gradient: all samples on one circle are equal.
        let side = 65usize;
        let mut img = Grid::filled(side, side, 0.0f32);
        let c = (side as f32 - 1.0) / 2.0;
        for y in 0..side {
            for x in 0..side {
                let d = ((x as f32 - c).powi(2) + (y as f32 - c).powi(2)).sqrt();
                img[(x, y)] = d / side as f32;
            }
        }
        let spec = CcsSpec {
            circles: 3,
            samples_per_circle: 12,
            max_radius_frac: 0.8,
        };
        let f = ccs_feature(&img, &spec).unwrap();
        for circle in 0..3 {
            let base = 1 + circle * 12;
            let first = f[base];
            for s in 0..12 {
                assert!(
                    (f[base + s] - first).abs() < 0.02,
                    "circle {circle} sample {s}: {} vs {first}",
                    f[base + s]
                );
            }
        }
    }

    #[test]
    fn detects_angular_asymmetry() {
        // Left half covered: samples at θ=π differ from θ=0.
        let mut img = Grid::filled(64, 64, 0.0f32);
        for y in 0..64 {
            for x in 0..32 {
                img[(x, y)] = 1.0;
            }
        }
        let spec = CcsSpec {
            circles: 2,
            samples_per_circle: 4, // angles 0, π/2, π, 3π/2
            max_radius_frac: 0.9,
        };
        let f = ccs_feature(&img, &spec).unwrap();
        // Outer circle: sample 0 at θ=0 (right, uncovered), sample 2 at θ=π
        // (left, covered).
        let base = 1 + 4;
        assert!(f[base] < 0.1);
        assert!(f[base + 2] > 0.9);
    }

    #[test]
    fn bilinear_interpolates_midpoints() {
        let img = Grid::from_vec(2, 2, vec![0.0f32, 1.0, 0.0, 1.0]);
        assert!((bilinear(&img, 0.5, 0.5) - 0.5).abs() < 1e-6);
        assert!((bilinear(&img, 0.0, 0.0) - 0.0).abs() < 1e-6);
        // Clamping outside the image.
        assert!((bilinear(&img, -5.0, 0.0) - 0.0).abs() < 1e-6);
        assert!((bilinear(&img, 5.0, 0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_parameters_rejected() {
        let img = Grid::filled(8, 8, 0.0f32);
        let mut spec = CcsSpec::default();
        spec.circles = 0;
        assert!(ccs_feature(&img, &spec).is_err());
        let mut spec = CcsSpec::default();
        spec.samples_per_circle = 0;
        assert!(ccs_feature(&img, &spec).is_err());
    }
}
