//! Property-based tests for the geometry substrate.

use hotspot_geometry::{raster, Clip, Grid, Point, Polygon, Rect};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0i64..500, 0i64..500, 1i64..300, 1i64..300)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h).expect("positive extent"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn intersection_is_commutative_and_contained(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn bounding_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.bounding_union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() >= a.area().max(b.area()));
    }

    #[test]
    fn translation_preserves_shape(a in arb_rect(), dx in -100i64..100, dy in -100i64..100) {
        let t = a.translated(Point::new(dx, dy));
        prop_assert_eq!(t.width(), a.width());
        prop_assert_eq!(t.height(), a.height());
        prop_assert_eq!(t.area(), a.area());
        prop_assert_eq!(t.translated(Point::new(-dx, -dy)), a);
    }

    #[test]
    fn intersection_area_bounded(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.area() <= a.area());
            prop_assert!(i.area() <= b.area());
        }
    }

    #[test]
    fn raster_mass_matches_clipped_area(
        rects in proptest::collection::vec(arb_rect(), 1..6),
        res in prop_oneof![Just(5u32), Just(10), Just(20)],
    ) {
        // Coverage sum * pixel area == total clipped shape area when
        // shapes are disjoint; with overlap it's <=. Use disjoint-by-
        // construction: offset each rect far apart vertically.
        let window = Rect::new(0, 0, 800, 800 * rects.len() as i64).expect("window");
        let mut clip = Clip::new(window);
        let mut expected = 0i64;
        for (i, r) in rects.iter().enumerate() {
            let shifted = r.translated(Point::new(0, 800 * i as i64));
            if let Some(inside) = shifted.intersection(&window) {
                expected += inside.area();
                clip.push(shifted);
            }
        }
        let img = raster::rasterize_clip(&clip, res);
        let mass = img.sum() * (res as f64) * (res as f64);
        prop_assert!((mass - expected as f64).abs() < 1e-2 * (expected as f64).max(1.0),
            "mass {mass} vs area {expected}");
    }

    #[test]
    fn raster_values_are_coverage_fractions(r in arb_rect(), res in 1u32..30) {
        let clip = Clip::with_shapes(Rect::new(0, 0, 600, 600).expect("window"), [r]);
        let img = raster::rasterize_clip(&clip, res);
        for &v in img.iter() {
            prop_assert!((0.0..=1.0).contains(&v), "coverage {v} out of range");
        }
    }

    #[test]
    fn polygon_from_rect_roundtrips(r in arb_rect()) {
        let p = Polygon::from(r);
        prop_assert_eq!(p.area(), r.area());
        prop_assert_eq!(p.bounding_box(), r);
        let rects = p.to_rects();
        prop_assert_eq!(rects.len(), 1);
        prop_assert_eq!(rects[0], r);
    }

    #[test]
    fn staircase_polygon_decomposition_is_disjoint_and_exact(
        steps in 1usize..6,
        w in 10i64..50,
        h in 10i64..50,
    ) {
        // Build a staircase: union of `steps` stacked rects, each shifted
        // right by w. Outline it manually and compare areas.
        let mut verts = vec![Point::new(0, 0)];
        for s in 0..steps as i64 {
            verts.push(Point::new(w * (s + 1), h * s));
            verts.push(Point::new(w * (s + 1), h * (s + 1)));
        }
        // Close back along the top and left.
        verts.push(Point::new(0, h * steps as i64));
        let poly = Polygon::new(verts).expect("valid staircase");
        let rects = poly.to_rects();
        // Disjoint.
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                prop_assert!(!rects[i].intersects(&rects[j]));
            }
        }
        // Exact area: sum of a staircase = w*h*(1+2+..+steps)... actually
        // row s spans x in [0, w*(s+1)) so area = h * w * Σ(s+1).
        let expected: i64 = (1..=steps as i64).map(|s| w * s * h).sum();
        prop_assert_eq!(poly.area(), expected);
    }

    #[test]
    fn clip_density_in_unit_range(rects in proptest::collection::vec(arb_rect(), 0..5)) {
        let window = Rect::new(0, 0, 800, 800).expect("window");
        let clip = Clip::with_shapes(window, rects);
        let d = clip.density();
        // Disjointness is not guaranteed, so density may exceed 1 only via
        // overlap; it must still be non-negative and finite.
        prop_assert!(d >= 0.0 && d.is_finite());
    }

    #[test]
    fn grid_window_reads_match_direct_indexing(
        w in 2usize..20,
        h in 2usize..20,
        x0 in 0usize..5,
        y0 in 0usize..5,
    ) {
        let grid = Grid::from_vec(w + 5, h + 5, (0..(w + 5) * (h + 5)).map(|v| v as f32).collect());
        let win = grid.window(x0, y0, w, h);
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(win[(x, y)], grid[(x0 + x, y0 + y)]);
            }
        }
    }
}
