//! Layout clips: the windowed patterns a hotspot detector classifies.

use crate::{Point, Polygon, Rect};
use serde::{Deserialize, Serialize};

/// A fixed window of a layout together with the mask shapes inside it.
///
/// The DAC'17 paper classifies 1200×1200 nm² clips; [`Clip`] generalises the
/// window. Shapes are clamped to the window when inserted via
/// [`Clip::push`] — geometry outside the window cannot influence the raster
/// and would silently distort density statistics otherwise.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::{Clip, Rect};
///
/// # fn main() -> Result<(), hotspot_geometry::GeometryError> {
/// let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
/// clip.push(Rect::new(-50, 100, 300, 140)?); // clamped to x >= 0
/// assert_eq!(clip.shapes()[0], Rect::new(0, 100, 300, 140)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clip {
    window: Rect,
    shapes: Vec<Rect>,
}

impl Clip {
    /// Creates an empty clip over `window`.
    pub fn new(window: Rect) -> Self {
        Clip {
            window,
            shapes: Vec::new(),
        }
    }

    /// Creates a clip over `window` pre-populated with `shapes` (each clamped
    /// to the window; shapes entirely outside are dropped).
    pub fn with_shapes<I: IntoIterator<Item = Rect>>(window: Rect, shapes: I) -> Self {
        let mut clip = Clip::new(window);
        for s in shapes {
            clip.push(s);
        }
        clip
    }

    /// The clip window.
    #[inline]
    pub fn window(&self) -> Rect {
        self.window
    }

    /// The (clamped) mask shapes.
    #[inline]
    pub fn shapes(&self) -> &[Rect] {
        &self.shapes
    }

    /// Adds a shape, clamped to the window. Returns `true` if any part of the
    /// shape landed inside the window.
    pub fn push(&mut self, shape: Rect) -> bool {
        match shape.intersection(&self.window) {
            Some(clamped) => {
                self.shapes.push(clamped);
                true
            }
            None => false,
        }
    }

    /// Adds every rectangle of a rectilinear polygon.
    pub fn push_polygon(&mut self, polygon: &Polygon) {
        for r in polygon.to_rects() {
            self.push(r);
        }
    }

    /// Number of shapes.
    #[inline]
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// Whether the clip holds no shapes.
    #[inline]
    pub fn is_blank(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Pattern density: union-free approximation `sum(shape areas) / window
    /// area`. Exact when shapes are disjoint (true for all generated
    /// patterns in this suite).
    pub fn density(&self) -> f64 {
        let covered: i64 = self.shapes.iter().map(|r| r.area()).sum();
        covered as f64 / self.window.area() as f64
    }

    /// Extracts the sub-clip covered by `window`: a clip whose window is
    /// `window` and whose shapes are this clip's shapes clamped to it (in
    /// the same order, shapes entirely outside dropped).
    ///
    /// This is the geometric step of sliding-window layout scanning —
    /// repeated extraction at stride offsets turns one large layout into
    /// the fixed-size clips the detector classifies. Extraction composes
    /// with clamping: clamping to `self.window` first and `window` second
    /// equals clamping to their intersection directly, so the sub-clip is
    /// identical to building a fresh clip over `window` from the original
    /// shapes.
    pub fn extract_window(&self, window: Rect) -> Clip {
        Clip::with_shapes(window, self.shapes.iter().copied())
    }

    /// Returns a copy translated so the window's low corner sits at the
    /// origin. Normalising clips makes raster outputs comparable.
    pub fn normalized(&self) -> Clip {
        let d = Point::origin() - self.window.lo();
        Clip {
            window: self.window.translated(d),
            shapes: self.shapes.iter().map(|r| r.translated(d)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::new(0, 0, 100, 100).unwrap()
    }

    #[test]
    fn push_clamps_to_window() {
        let mut c = Clip::new(window());
        assert!(c.push(Rect::new(-10, -10, 20, 20).unwrap()));
        assert_eq!(c.shapes()[0], Rect::new(0, 0, 20, 20).unwrap());
    }

    #[test]
    fn push_outside_is_dropped() {
        let mut c = Clip::new(window());
        assert!(!c.push(Rect::new(200, 200, 300, 300).unwrap()));
        assert!(c.is_blank());
    }

    #[test]
    fn density_of_disjoint_shapes() {
        let mut c = Clip::new(window());
        c.push(Rect::new(0, 0, 50, 100).unwrap());
        assert!((c.density() - 0.5).abs() < 1e-12);
        c.push(Rect::new(50, 0, 100, 50).unwrap());
        assert!((c.density() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalization_moves_window_to_origin() {
        let w = Rect::new(1000, 2000, 1100, 2100).unwrap();
        let mut c = Clip::new(w);
        c.push(Rect::new(1010, 2010, 1020, 2090).unwrap());
        let n = c.normalized();
        assert_eq!(n.window().lo(), Point::origin());
        assert_eq!(n.shapes()[0], Rect::new(10, 10, 20, 90).unwrap());
        // Density is translation invariant.
        assert!((n.density() - c.density()).abs() < 1e-12);
    }

    #[test]
    fn extract_window_clamps_and_preserves_order() {
        let mut c = Clip::new(window());
        c.push(Rect::new(0, 0, 30, 30).unwrap());
        c.push(Rect::new(20, 20, 80, 40).unwrap());
        c.push(Rect::new(90, 90, 100, 100).unwrap());
        let sub = c.extract_window(Rect::new(10, 10, 60, 60).unwrap());
        assert_eq!(sub.window(), Rect::new(10, 10, 60, 60).unwrap());
        assert_eq!(
            sub.shapes(),
            &[
                Rect::new(10, 10, 30, 30).unwrap(),
                Rect::new(20, 20, 60, 40).unwrap(),
            ]
        );
        // Equivalent to clamping the original shapes directly.
        let direct = Clip::with_shapes(
            Rect::new(10, 10, 60, 60).unwrap(),
            [
                Rect::new(0, 0, 30, 30).unwrap(),
                Rect::new(20, 20, 80, 40).unwrap(),
                Rect::new(90, 90, 100, 100).unwrap(),
            ],
        );
        assert_eq!(sub, direct);
    }

    #[test]
    fn polygon_insertion() {
        let mut c = Clip::new(window());
        let l = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap();
        c.push_polygon(&l);
        let covered: i64 = c.shapes().iter().map(|r| r.area()).sum();
        assert_eq!(covered, l.area());
    }
}
