//! Area-accurate rasterisation of clips.
//!
//! Rasterisation converts a [`Clip`] into a [`Grid<f32>`] where each pixel
//! holds the *fraction of its area covered by mask shapes* (0.0–1.0). For
//! Manhattan rectangles this coverage is computed exactly from 1-D overlap
//! products, so the raster is anti-aliased without sampling error. Coverage
//! values saturate at 1.0 when shapes overlap.

use crate::{Clip, Grid, Rect};

/// Rasterises `clip` at `resolution_nm` nanometres per pixel.
///
/// The output grid has `ceil(window / resolution)` pixels per axis; pixel
/// `(0, 0)` corresponds to the window's low corner. Each pixel value is the
/// exact covered area fraction, clamped to 1.0.
///
/// # Panics
///
/// Panics if `resolution_nm == 0` (use [`try_rasterize_clip`] for a fallible
/// variant).
///
/// # Examples
///
/// ```
/// use hotspot_geometry::{Clip, Rect, raster::rasterize_clip};
///
/// # fn main() -> Result<(), hotspot_geometry::GeometryError> {
/// let mut clip = Clip::new(Rect::new(0, 0, 100, 100)?);
/// clip.push(Rect::new(0, 0, 55, 100)?);
/// let img = rasterize_clip(&clip, 10);
/// assert_eq!(img[(0, 0)], 1.0);   // fully covered pixel
/// assert_eq!(img[(5, 0)], 0.5);   // edge pixel: half covered
/// assert_eq!(img[(9, 9)], 0.0);   // empty pixel
/// # Ok(())
/// # }
/// ```
pub fn rasterize_clip(clip: &Clip, resolution_nm: u32) -> Grid<f32> {
    try_rasterize_clip(clip, resolution_nm).expect("resolution must be nonzero")
}

/// Fallible variant of [`rasterize_clip`].
///
/// # Errors
///
/// Returns [`crate::GeometryError::ZeroResolution`] when `resolution_nm == 0`.
pub fn try_rasterize_clip(
    clip: &Clip,
    resolution_nm: u32,
) -> Result<Grid<f32>, crate::GeometryError> {
    if resolution_nm == 0 {
        return Err(crate::GeometryError::ZeroResolution);
    }
    let res = i64::from(resolution_nm);
    let window = clip.window();
    let width = div_ceil(window.width(), res) as usize;
    let height = div_ceil(window.height(), res) as usize;
    let mut grid = Grid::filled(width, height, 0.0f32);
    let pixel_area = (res * res) as f64;

    for shape in clip.shapes() {
        // Shape coordinates relative to window origin.
        let local = shape.translated(crate::Point::origin() - window.lo());
        paint_rect(&mut grid, &local, res, pixel_area);
    }
    // Overlapping shapes can push coverage past 1; saturate.
    for v in grid.iter_mut() {
        if *v > 1.0 {
            *v = 1.0;
        }
    }
    Ok(grid)
}

/// Accumulates the exact coverage of `r` (window-local nm coordinates) into
/// `grid` at `res` nm/pixel.
fn paint_rect(grid: &mut Grid<f32>, r: &Rect, res: i64, pixel_area: f64) {
    let px0 = (r.lo().x / res).max(0);
    let py0 = (r.lo().y / res).max(0);
    let px1 = div_ceil(r.hi().x, res).min(grid.width() as i64);
    let py1 = div_ceil(r.hi().y, res).min(grid.height() as i64);
    for py in py0..py1 {
        let cell_y0 = py * res;
        let cover_y = overlap(r.lo().y, r.hi().y, cell_y0, cell_y0 + res);
        if cover_y == 0 {
            continue;
        }
        let row = grid.row_mut(py as usize);
        for px in px0..px1 {
            let cell_x0 = px * res;
            let cover_x = overlap(r.lo().x, r.hi().x, cell_x0, cell_x0 + res);
            if cover_x == 0 {
                continue;
            }
            row[px as usize] += ((cover_x * cover_y) as f64 / pixel_area) as f32;
        }
    }
}

#[inline]
fn overlap(a0: i64, a1: i64, b0: i64, b1: i64) -> i64 {
    (a1.min(b1) - a0.max(b0)).max(0)
}

#[inline]
fn div_ceil(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// Down-samples a coverage image by integer `factor` using block averaging.
///
/// Useful for producing the "raw down-sampled image" ablation baseline that
/// the feature tensor is compared against.
///
/// # Panics
///
/// Panics if `factor == 0` or the image dimensions are not divisible by
/// `factor`.
pub fn downsample(image: &Grid<f32>, factor: usize) -> Grid<f32> {
    assert!(factor > 0, "downsample factor must be nonzero");
    assert!(
        image.width().is_multiple_of(factor) && image.height().is_multiple_of(factor),
        "image {}x{} not divisible by {}",
        image.width(),
        image.height(),
        factor
    );
    let w = image.width() / factor;
    let h = image.height() / factor;
    let norm = 1.0 / (factor * factor) as f32;
    let mut out = Grid::filled(w, h, 0.0f32);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for dy in 0..factor {
                let row = image.row(y * factor + dy);
                for dx in 0..factor {
                    acc += row[x * factor + dx];
                }
            }
            out[(x, y)] = acc * norm;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn clip_with(shapes: &[Rect]) -> Clip {
        Clip::with_shapes(Rect::new(0, 0, 100, 100).unwrap(), shapes.iter().copied())
    }

    #[test]
    fn total_coverage_equals_shape_area() {
        let c = clip_with(&[Rect::new(13, 27, 61, 89).unwrap()]);
        let img = rasterize_clip(&c, 10);
        let covered = img.sum() * 100.0; // pixel area = 100 nm²
        assert!((covered - (48 * 62) as f64).abs() < 1e-3);
    }

    #[test]
    fn partial_pixels_fractional() {
        let c = clip_with(&[Rect::new(0, 0, 15, 10).unwrap()]);
        let img = rasterize_clip(&c, 10);
        assert_eq!(img[(0, 0)], 1.0);
        assert_eq!(img[(1, 0)], 0.5);
        assert_eq!(img[(2, 0)], 0.0);
    }

    #[test]
    fn overlapping_shapes_saturate() {
        let c = clip_with(&[
            Rect::new(0, 0, 20, 20).unwrap(),
            Rect::new(0, 0, 20, 20).unwrap(),
        ]);
        let img = rasterize_clip(&c, 10);
        assert_eq!(img.max(), 1.0);
    }

    #[test]
    fn window_offset_is_respected() {
        let w = Rect::new(1000, 1000, 1100, 1100).unwrap();
        let mut c = Clip::new(w);
        c.push(Rect::new(1000, 1000, 1010, 1010).unwrap());
        let img = rasterize_clip(&c, 10);
        assert_eq!(img[(0, 0)], 1.0);
        assert_eq!(img[(1, 1)], 0.0);
    }

    #[test]
    fn zero_resolution_errors() {
        let c = Clip::new(Rect::new(0, 0, 10, 10).unwrap());
        assert!(matches!(
            try_rasterize_clip(&c, 0),
            Err(crate::GeometryError::ZeroResolution)
        ));
    }

    #[test]
    fn non_divisible_window_rounds_up() {
        let c = Clip::new(Rect::new(0, 0, 105, 95).unwrap());
        let img = rasterize_clip(&c, 10);
        assert_eq!((img.width(), img.height()), (11, 10));
    }

    #[test]
    fn downsample_preserves_mean() {
        let mut c = Clip::new(Rect::new(0, 0, 100, 100).unwrap());
        c.push(Rect::new(0, 0, 50, 100).unwrap());
        let img = rasterize_clip(&c, 5); // 20x20
        let small = downsample(&img, 4); // 5x5
        assert!((small.mean() - img.mean()).abs() < 1e-6);
        assert_eq!((small.width(), small.height()), (5, 5));
    }

    #[test]
    fn blank_clip_is_all_zero() {
        let c = Clip::new(Rect::new(0, 0, 50, 50).unwrap());
        let img = rasterize_clip(&c, 5);
        assert_eq!(img.sum(), 0.0);
        assert_eq!(img.min(), 0.0);
    }

    #[test]
    fn shape_partially_outside_window_counts_inside_only() {
        let w = Rect::new(0, 0, 100, 100).unwrap();
        let mut c = Clip::new(w);
        c.push(Rect::new(90, 90, 200, 200).unwrap());
        let img = rasterize_clip(&c, 10);
        let covered = img.sum() * 100.0;
        assert!((covered - 100.0).abs() < 1e-3);
        assert_eq!(img[(9, 9)], 1.0);
        // Clamp means the window translation math must still line up.
        assert_eq!(
            c.shapes()[0].translated(Point::origin() - w.lo()),
            Rect::new(90, 90, 100, 100).unwrap()
        );
    }
}
