//! Layout geometry substrate for the hotspot-detection suite.
//!
//! All coordinates are integer **nanometres** (`i64`), matching how physical
//! verification tools snap mask layouts to a manufacturing grid. The crate
//! provides:
//!
//! - [`Point`] and [`Rect`]: Manhattan primitives.
//! - [`Polygon`]: rectilinear polygons with scanline decomposition into rects.
//! - [`Clip`]: a fixed window of layout (the unit classified by a hotspot
//!   detector — the paper uses 1200×1200 nm² clips).
//! - [`Grid`]: a dense row-major raster container.
//! - [`raster`]: area-accurate rasterisation of clips onto a [`Grid<f32>`],
//!   the input of both the lithography simulator and feature extraction.
//! - [`io`]: a plain-text clip interchange format for saving and loading
//!   pattern libraries.
//!
//! # Examples
//!
//! ```
//! use hotspot_geometry::{Clip, Rect, raster::rasterize_clip};
//!
//! # fn main() -> Result<(), hotspot_geometry::GeometryError> {
//! let window = Rect::new(0, 0, 1200, 1200)?;
//! let mut clip = Clip::new(window);
//! clip.push(Rect::new(100, 100, 200, 1100)?);
//! let image = rasterize_clip(&clip, 10); // 10 nm/pixel -> 120×120 grid
//! assert_eq!((image.width(), image.height()), (120, 120));
//! # Ok(())
//! # }
//! ```

pub mod clip;
pub mod grid;
pub mod io;
pub mod point;
pub mod polygon;
pub mod raster;
pub mod rect;

pub use clip::Clip;
pub use grid::Grid;
pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or manipulating geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A rectangle was given with `lo` not strictly below-left of `hi`.
    EmptyRect {
        /// Requested low corner.
        lo: Point,
        /// Requested high corner.
        hi: Point,
    },
    /// A polygon outline was not a valid closed rectilinear ring.
    InvalidPolygon(&'static str),
    /// A raster resolution of zero nanometres per pixel was requested.
    ZeroResolution,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::EmptyRect { lo, hi } => {
                write!(f, "rectangle has no area: lo {lo}, hi {hi}")
            }
            GeometryError::InvalidPolygon(why) => write!(f, "invalid rectilinear polygon: {why}"),
            GeometryError::ZeroResolution => write!(f, "raster resolution must be nonzero"),
        }
    }
}

impl Error for GeometryError {}
