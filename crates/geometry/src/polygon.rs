//! Rectilinear polygons with scanline decomposition.

use crate::{GeometryError, Point, Rect};
use serde::{Deserialize, Serialize};

/// A simple rectilinear (Manhattan) polygon, stored as its outline ring.
///
/// The ring is implicitly closed (the last vertex connects back to the
/// first). Consecutive edges must alternate horizontal/vertical, which
/// [`Polygon::new`] validates. Use [`Polygon::to_rects`] to decompose the
/// interior into disjoint rectangles — the form the rasteriser and pattern
/// generators consume.
///
/// # Examples
///
/// An L-shape:
///
/// ```
/// use hotspot_geometry::{Point, Polygon};
///
/// # fn main() -> Result<(), hotspot_geometry::GeometryError> {
/// let l = Polygon::new(vec![
///     Point::new(0, 0),
///     Point::new(20, 0),
///     Point::new(20, 10),
///     Point::new(10, 10),
///     Point::new(10, 30),
///     Point::new(0, 30),
/// ])?;
/// let rects = l.to_rects();
/// let area: i64 = rects.iter().map(|r| r.area()).sum();
/// assert_eq!(area, 20 * 10 + 10 * 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a rectilinear polygon from an outline ring.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::InvalidPolygon`] when the ring has fewer than
    /// four vertices, an odd vertex count, repeated consecutive vertices, or
    /// two consecutive edges in the same direction (i.e. the outline is not
    /// alternating horizontal/vertical).
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeometryError> {
        if vertices.len() < 4 {
            return Err(GeometryError::InvalidPolygon("fewer than 4 vertices"));
        }
        if !vertices.len().is_multiple_of(2) {
            return Err(GeometryError::InvalidPolygon(
                "rectilinear ring needs an even vertex count",
            ));
        }
        let n = vertices.len();
        let mut prev_horizontal = None;
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let horizontal = match (a.x == b.x, a.y == b.y) {
                (true, true) => {
                    return Err(GeometryError::InvalidPolygon("repeated consecutive vertex"))
                }
                (true, false) => false,
                (false, true) => true,
                (false, false) => {
                    return Err(GeometryError::InvalidPolygon("diagonal edge in outline"))
                }
            };
            if prev_horizontal == Some(horizontal) {
                return Err(GeometryError::InvalidPolygon(
                    "consecutive edges share a direction",
                ));
            }
            prev_horizontal = Some(horizontal);
        }
        // First and last edge must also alternate; with an even vertex count
        // and the loop above this is already guaranteed.
        Ok(Polygon { vertices })
    }

    /// Outline vertices in ring order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Axis-aligned bounding box of the outline.
    ///
    /// # Panics
    ///
    /// Never panics: a validated polygon always has positive extent.
    pub fn bounding_box(&self) -> Rect {
        let mut lo = self.vertices[0];
        let mut hi = self.vertices[0];
        for v in &self.vertices {
            lo.x = lo.x.min(v.x);
            lo.y = lo.y.min(v.y);
            hi.x = hi.x.max(v.x);
            hi.y = hi.y.max(v.y);
        }
        Rect::from_corners(lo, hi).expect("validated polygon has positive extent")
    }

    /// Decomposes the interior into disjoint rectangles via a horizontal
    /// scanline sweep over distinct vertex ordinates.
    ///
    /// Inside/outside is decided by crossing parity, so the decomposition is
    /// correct for any simple rectilinear ring regardless of orientation.
    pub fn to_rects(&self) -> Vec<Rect> {
        // Collect vertical edges as (x, y_lo, y_hi).
        let n = self.vertices.len();
        let mut vedges: Vec<(i64, i64, i64)> = Vec::new();
        let mut ys: Vec<i64> = Vec::new();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            ys.push(a.y);
            if a.x == b.x {
                vedges.push((a.x, a.y.min(b.y), a.y.max(b.y)));
            }
        }
        ys.sort_unstable();
        ys.dedup();

        let mut rects = Vec::new();
        for band in ys.windows(2) {
            let (y0, y1) = (band[0], band[1]);
            // Vertical edges fully spanning this band, sorted by x.
            let mut xs: Vec<i64> = vedges
                .iter()
                .filter(|&&(_, lo, hi)| lo <= y0 && hi >= y1)
                .map(|&(x, _, _)| x)
                .collect();
            xs.sort_unstable();
            // Parity pairing: (xs[0], xs[1]) inside, (xs[2], xs[3]) inside, ...
            for pair in xs.chunks_exact(2) {
                if let Ok(r) = Rect::new(pair[0], y0, pair[1], y1) {
                    rects.push(r);
                }
            }
        }
        rects
    }

    /// Total enclosed area in nm².
    pub fn area(&self) -> i64 {
        self.to_rects().iter().map(|r| r.area()).sum()
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Self {
        Polygon {
            vertices: vec![
                r.lo(),
                Point::new(r.hi().x, r.lo().y),
                r.hi(),
                Point::new(r.lo().x, r.hi().y),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rings() {
        assert!(Polygon::new(vec![Point::new(0, 0), Point::new(1, 0)]).is_err());
        // Diagonal edge.
        assert!(Polygon::new(vec![
            Point::new(0, 0),
            Point::new(5, 5),
            Point::new(5, 0),
            Point::new(0, 5),
        ])
        .is_err());
        // Two horizontal edges in a row.
        assert!(Polygon::new(vec![
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(9, 0),
            Point::new(9, 4),
            Point::new(0, 4),
            Point::new(0, 2),
        ])
        .is_err());
    }

    #[test]
    fn rectangle_roundtrip() {
        let r = Rect::new(2, 3, 10, 7).unwrap();
        let p = Polygon::from(r);
        let rects = p.to_rects();
        assert_eq!(rects, vec![r]);
        assert_eq!(p.area(), r.area());
        assert_eq!(p.bounding_box(), r);
    }

    #[test]
    fn l_shape_area() {
        let l = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap();
        assert_eq!(l.area(), 200 + 200);
        // Rects are disjoint.
        let rects = l.to_rects();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(!rects[i].intersects(&rects[j]));
            }
        }
    }

    #[test]
    fn u_shape_has_two_columns_in_upper_band() {
        // A "U": 30 wide, 30 tall, 10-wide legs.
        let u = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(30, 0),
            Point::new(30, 30),
            Point::new(20, 30),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap();
        assert_eq!(u.area(), 30 * 10 + 2 * (10 * 20));
        let upper: Vec<_> = u
            .to_rects()
            .into_iter()
            .filter(|r| r.lo().y >= 10)
            .collect();
        assert_eq!(upper.len(), 2);
    }

    #[test]
    fn reversed_orientation_same_area() {
        let mut verts = vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ];
        let a = Polygon::new(verts.clone()).unwrap().area();
        verts.reverse();
        let b = Polygon::new(verts).unwrap().area();
        assert_eq!(a, b);
    }
}
