//! Axis-aligned rectangles in integer nanometres.

use crate::{GeometryError, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A non-degenerate axis-aligned rectangle `[lo.x, hi.x) × [lo.y, hi.y)`.
///
/// Rectangles are half-open: a 40 nm wide line from x=100 to x=140 covers
/// pixels/coordinates `100..140`. The constructor enforces positive width and
/// height, so every `Rect` has nonzero area ([`GeometryError::EmptyRect`]
/// otherwise).
///
/// # Examples
///
/// ```
/// use hotspot_geometry::Rect;
///
/// # fn main() -> Result<(), hotspot_geometry::GeometryError> {
/// let r = Rect::new(0, 0, 40, 200)?;
/// assert_eq!(r.width(), 40);
/// assert_eq!(r.height(), 200);
/// assert_eq!(r.area(), 8_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle spanning `[x0, x1) × [y0, y1)`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyRect`] if `x1 <= x0` or `y1 <= y0`.
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Result<Self, GeometryError> {
        Self::from_corners(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// Creates a rectangle from its low (bottom-left) and high (top-right)
    /// corners.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyRect`] if the rectangle would be empty.
    pub fn from_corners(lo: Point, hi: Point) -> Result<Self, GeometryError> {
        if hi.x <= lo.x || hi.y <= lo.y {
            return Err(GeometryError::EmptyRect { lo, hi });
        }
        Ok(Rect { lo, hi })
    }

    /// Creates a rectangle from a corner plus width/height.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyRect`] if `w <= 0` or `h <= 0`.
    pub fn from_size(lo: Point, w: i64, h: i64) -> Result<Self, GeometryError> {
        Self::from_corners(lo, Point::new(lo.x + w, lo.y + h))
    }

    /// Bottom-left corner.
    #[inline]
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// Top-right corner (exclusive).
    #[inline]
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Width in nm (always positive).
    #[inline]
    pub fn width(&self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Height in nm (always positive).
    #[inline]
    pub fn height(&self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// Area in nm² (always positive).
    #[inline]
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Centre of the rectangle, rounded down to the grid.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2, (self.lo.y + self.hi.y) / 2)
    }

    /// Whether `p` lies inside the half-open extents.
    ///
    /// ```
    /// use hotspot_geometry::{Point, Rect};
    /// # fn main() -> Result<(), hotspot_geometry::GeometryError> {
    /// let r = Rect::new(0, 0, 10, 10)?;
    /// assert!(r.contains(Point::new(0, 0)));
    /// assert!(!r.contains(Point::new(10, 0)));
    /// # Ok(())
    /// # }
    /// ```
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x < self.hi.x && p.y >= self.lo.y && p.y < self.hi.y
    }

    /// Whether `other` is entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.lo.x >= self.lo.x
            && other.lo.y >= self.lo.y
            && other.hi.x <= self.hi.x
            && other.hi.y <= self.hi.y
    }

    /// Whether the two rectangles share interior area.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// The overlapping region, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let lo = Point::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y));
        let hi = Point::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y));
        Rect::from_corners(lo, hi).ok()
    }

    /// Smallest rectangle covering both inputs.
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        // Cannot be empty because both inputs are non-empty.
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Rectangle shifted by displacement `d`.
    #[inline]
    pub fn translated(&self, d: Point) -> Rect {
        Rect {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// Rectangle grown outward by `margin` nm on every side (shrunk if
    /// negative).
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyRect`] when a negative margin collapses
    /// the rectangle.
    pub fn inflated(&self, margin: i64) -> Result<Rect, GeometryError> {
        Rect::from_corners(
            Point::new(self.lo.x - margin, self.lo.y - margin),
            Point::new(self.hi.x + margin, self.hi.y + margin),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} - {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(x0, y0, x1, y1).expect("valid rect")
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Rect::new(0, 0, 0, 10).is_err());
        assert!(Rect::new(0, 0, 10, 0).is_err());
        assert!(Rect::new(5, 5, 3, 8).is_err());
    }

    #[test]
    fn dimensions() {
        let a = r(-5, -5, 5, 15);
        assert_eq!(a.width(), 10);
        assert_eq!(a.height(), 20);
        assert_eq!(a.area(), 200);
        assert_eq!(a.center(), Point::new(0, 5));
    }

    #[test]
    fn containment_half_open() {
        let a = r(0, 0, 10, 10);
        assert!(a.contains(Point::new(9, 9)));
        assert!(!a.contains(Point::new(9, 10)));
        assert!(a.contains_rect(&a));
        assert!(a.contains_rect(&r(1, 1, 9, 9)));
        assert!(!a.contains_rect(&r(1, 1, 11, 9)));
    }

    #[test]
    fn intersection_behaviour() {
        let a = r(0, 0, 10, 10);
        let b = r(5, 5, 15, 15);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r(5, 5, 10, 10)));
        // Touching edges share no interior.
        let c = r(10, 0, 20, 10);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn union_and_translate() {
        let a = r(0, 0, 1, 1);
        let b = r(10, 10, 11, 11);
        assert_eq!(a.bounding_union(&b), r(0, 0, 11, 11));
        assert_eq!(a.translated(Point::new(3, 4)), r(3, 4, 4, 5));
    }

    #[test]
    fn inflation() {
        let a = r(10, 10, 20, 20);
        assert_eq!(a.inflated(5).unwrap(), r(5, 5, 25, 25));
        assert_eq!(a.inflated(-4).unwrap(), r(14, 14, 16, 16));
        assert!(a.inflated(-5).is_err());
    }

    #[test]
    fn from_size_matches_corners() {
        assert_eq!(
            Rect::from_size(Point::new(2, 3), 4, 5).unwrap(),
            r(2, 3, 6, 8)
        );
        assert!(Rect::from_size(Point::origin(), 0, 5).is_err());
    }
}
