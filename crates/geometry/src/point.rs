//! Integer-nanometre points.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A point on the manufacturing grid, in nanometres.
///
/// `Point` is also used as a displacement vector; [`Add`]/[`Sub`] are
/// component-wise.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::Point;
///
/// let a = Point::new(10, 20);
/// let b = Point::new(1, 2);
/// assert_eq!(a + b, Point::new(11, 22));
/// assert_eq!(a - b, Point::new(9, 18));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate in nm.
    pub x: i64,
    /// Vertical coordinate in nm.
    pub y: i64,
}

impl Point {
    /// Creates a point at `(x, y)` nm.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Point { x: 0, y: 0 }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use hotspot_geometry::Point;
    /// assert_eq!(Point::new(0, 0).manhattan_distance(Point::new(3, -4)), 7);
    /// ```
    #[inline]
    pub fn manhattan_distance(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance to `other`, as `f64`.
    #[inline]
    pub fn euclidean_distance(self, other: Point) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dy = (self.y - other.y) as f64;
        (dx * dx + dy * dy).sqrt()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(i64, i64)> for Point {
    #[inline]
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_origin() {
        assert_eq!(Point::new(3, 4), Point { x: 3, y: 4 });
        assert_eq!(Point::origin(), Point::default());
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = Point::new(5, -7);
        let b = Point::new(-2, 9);
        assert_eq!(a + b - b, a);
        assert_eq!(-(-a), a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn distances() {
        let a = Point::origin();
        let b = Point::new(3, 4);
        assert_eq!(a.manhattan_distance(b), 7);
        assert!((a.euclidean_distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1, 2).into();
        assert_eq!(p, Point::new(1, 2));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
    }
}
