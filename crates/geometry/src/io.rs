//! Plain-text clip interchange format.
//!
//! Real physical-verification flows exchange pattern libraries between
//! tools; this module defines a minimal line-oriented format for clips so
//! benchmarks, hotspot libraries and single patterns can be saved and
//! reloaded without a GDSII dependency:
//!
//! ```text
//! # comments and blank lines are ignored
//! clip 0 0 1200 1200      # window: x0 y0 x1 y1 (nm)
//! rect 100 100 200 1100   # one shape per line, window-relative absolute nm
//! rect 300 100 400 1100
//! end
//! ```
//!
//! Multiple `clip … end` records may appear in one file/stream.

use crate::{Clip, GeometryError, Rect};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from reading the clip text format.
#[derive(Debug)]
pub enum ClipIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse, with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Geometry validation failed (degenerate rect, etc.).
    Geometry(GeometryError),
}

impl fmt::Display for ClipIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClipIoError::Io(e) => write!(f, "i/o failure: {e}"),
            ClipIoError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            ClipIoError::Geometry(e) => write!(f, "invalid geometry: {e}"),
        }
    }
}

impl Error for ClipIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClipIoError::Io(e) => Some(e),
            ClipIoError::Geometry(e) => Some(e),
            ClipIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ClipIoError {
    fn from(e: std::io::Error) -> Self {
        ClipIoError::Io(e)
    }
}

impl From<GeometryError> for ClipIoError {
    fn from(e: GeometryError) -> Self {
        ClipIoError::Geometry(e)
    }
}

/// Writes clips in the text format. Pass `&mut` of any [`Write`]r.
///
/// # Errors
///
/// Propagates I/O failures.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::{io, Clip, Rect};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
/// clip.push(Rect::new(100, 100, 200, 1100)?);
/// let mut buf = Vec::new();
/// io::write_clips(&mut buf, [&clip])?;
/// let back = io::read_clips(&mut buf.as_slice())?;
/// assert_eq!(back, vec![clip]);
/// # Ok(())
/// # }
/// ```
pub fn write_clips<'a, W, I>(writer: W, clips: I) -> Result<(), ClipIoError>
where
    W: Write,
    I: IntoIterator<Item = &'a Clip>,
{
    let mut w = writer;
    for clip in clips {
        let win = clip.window();
        writeln!(
            w,
            "clip {} {} {} {}",
            win.lo().x,
            win.lo().y,
            win.hi().x,
            win.hi().y
        )?;
        for r in clip.shapes() {
            writeln!(
                w,
                "rect {} {} {} {}",
                r.lo().x,
                r.lo().y,
                r.hi().x,
                r.hi().y
            )?;
        }
        writeln!(w, "end")?;
    }
    Ok(())
}

/// Reads every clip record from a text stream. Pass `&mut` of any
/// [`BufRead`]er (e.g. `&mut file_bytes.as_slice()`).
///
/// # Errors
///
/// Returns [`ClipIoError::Parse`] on malformed lines (unknown keyword,
/// wrong arity, `rect` outside a record, unterminated record) and
/// [`ClipIoError::Geometry`] on degenerate coordinates.
pub fn read_clips<R: BufRead>(reader: R) -> Result<Vec<Clip>, ClipIoError> {
    let mut clips = Vec::new();
    let mut current: Option<Clip> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.split('#').next().unwrap_or("").trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a token");
        let args: Vec<&str> = parts.collect();
        match keyword {
            "clip" => {
                if current.is_some() {
                    return Err(ClipIoError::Parse {
                        line: lineno,
                        reason: "nested 'clip' before 'end'".into(),
                    });
                }
                let c = parse_coords(&args, lineno)?;
                current = Some(Clip::new(Rect::new(c[0], c[1], c[2], c[3])?));
            }
            "rect" => {
                let clip = current.as_mut().ok_or_else(|| ClipIoError::Parse {
                    line: lineno,
                    reason: "'rect' outside a clip record".into(),
                })?;
                let c = parse_coords(&args, lineno)?;
                clip.push(Rect::new(c[0], c[1], c[2], c[3])?);
            }
            "end" => {
                let clip = current.take().ok_or_else(|| ClipIoError::Parse {
                    line: lineno,
                    reason: "'end' without a clip record".into(),
                })?;
                clips.push(clip);
            }
            other => {
                return Err(ClipIoError::Parse {
                    line: lineno,
                    reason: format!("unknown keyword '{other}'"),
                });
            }
        }
    }
    if current.is_some() {
        return Err(ClipIoError::Parse {
            line: 0,
            reason: "unterminated clip record at end of input".into(),
        });
    }
    Ok(clips)
}

fn parse_coords(args: &[&str], lineno: usize) -> Result<[i64; 4], ClipIoError> {
    if args.len() != 4 {
        return Err(ClipIoError::Parse {
            line: lineno,
            reason: format!("expected 4 coordinates, got {}", args.len()),
        });
    }
    let mut out = [0i64; 4];
    for (slot, token) in out.iter_mut().zip(args.iter()) {
        *slot = token.parse().map_err(|_| ClipIoError::Parse {
            line: lineno,
            reason: format!("'{token}' is not an integer"),
        })?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_clip() -> Clip {
        let mut c = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
        c.push(Rect::new(100, 100, 200, 1100).unwrap());
        c.push(Rect::new(300, 100, 400, 1100).unwrap());
        c
    }

    #[test]
    fn roundtrip_multiple_clips() {
        let a = sample_clip();
        let mut b = Clip::new(Rect::new(1000, 1000, 2200, 2200).unwrap());
        b.push(Rect::new(1100, 1100, 1500, 1500).unwrap());
        let mut buf = Vec::new();
        write_clips(&mut buf, [&a, &b]).unwrap();
        let back = read_clips(buf.as_slice()).unwrap();
        assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header comment\nclip 0 0 100 100\n  # indented comment\nrect 10 10 20 20 # trailing\n\nend\n";
        let clips = read_clips(text.as_bytes()).unwrap();
        assert_eq!(clips.len(), 1);
        assert_eq!(clips[0].shape_count(), 1);
    }

    #[test]
    fn empty_input_is_empty_vec() {
        assert!(read_clips("".as_bytes()).unwrap().is_empty());
        assert!(read_clips("# only comments\n".as_bytes())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        // rect before clip.
        assert!(matches!(
            read_clips("rect 0 0 1 1\n".as_bytes()),
            Err(ClipIoError::Parse { line: 1, .. })
        ));
        // Wrong arity.
        assert!(matches!(
            read_clips("clip 0 0 100\n".as_bytes()),
            Err(ClipIoError::Parse { line: 1, .. })
        ));
        // Non-integer.
        assert!(matches!(
            read_clips("clip 0 0 1x0 100\n".as_bytes()),
            Err(ClipIoError::Parse { .. })
        ));
        // Unknown keyword.
        assert!(matches!(
            read_clips("polygon 0 0 1 1\n".as_bytes()),
            Err(ClipIoError::Parse { .. })
        ));
        // end without clip.
        assert!(matches!(
            read_clips("end\n".as_bytes()),
            Err(ClipIoError::Parse { .. })
        ));
        // Unterminated record.
        assert!(matches!(
            read_clips("clip 0 0 10 10\nrect 0 0 5 5\n".as_bytes()),
            Err(ClipIoError::Parse { line: 0, .. })
        ));
        // Nested clip.
        assert!(matches!(
            read_clips("clip 0 0 10 10\nclip 0 0 10 10\n".as_bytes()),
            Err(ClipIoError::Parse { line: 2, .. })
        ));
        // Degenerate rect surfaces as a geometry error.
        assert!(matches!(
            read_clips("clip 0 0 10 10\nrect 5 5 5 8\nend\n".as_bytes()),
            Err(ClipIoError::Geometry(_))
        ));
    }

    #[test]
    fn shapes_outside_window_are_clamped_like_push() {
        let text = "clip 0 0 100 100\nrect -50 -50 50 50\nend\n";
        let clips = read_clips(text.as_bytes()).unwrap();
        assert_eq!(clips[0].shapes()[0], Rect::new(0, 0, 50, 50).unwrap());
    }
}
