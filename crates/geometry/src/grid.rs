//! Dense row-major raster container.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `width × height` grid stored row-major (`y * width + x`).
///
/// `Grid<f32>` is the raster-image currency of the suite: the rasteriser
/// produces one per clip, the lithography simulator convolves them, and the
/// DCT feature extractor consumes them.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::Grid;
///
/// let mut g = Grid::filled(4, 3, 0.0f32);
/// g[(2, 1)] = 1.0;
/// assert_eq!(g[(2, 1)], 1.0);
/// assert_eq!(g.iter().filter(|&&v| v > 0.0).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// Creates a grid with every cell set to `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows `usize`.
    pub fn filled(width: usize, height: usize, fill: T) -> Self {
        let cells = width
            .checked_mul(height)
            .expect("grid dimensions overflow usize");
        Grid {
            width,
            height,
            data: vec![fill; cells],
        }
    }
}

impl<T> Grid<T> {
    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            width * height,
            "buffer length {} does not match {}x{}",
            data.len(),
            width,
            height
        );
        Grid {
            width,
            height,
            data,
        }
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total cell count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has zero cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bounds-checked cell access.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<&T> {
        if x < self.width && y < self.height {
            Some(&self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Bounds-checked mutable cell access.
    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize) -> Option<&mut T> {
        if x < self.width && y < self.height {
            Some(&mut self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// One full row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        assert!(y < self.height, "row {y} out of range");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// One full row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        assert!(y < self.height, "row {y} out of range");
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Iterates over all cells in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutable iteration over all cells in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The raw mutable row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid and returns the backing buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element-wise map into a new grid.
    pub fn map<U, F: FnMut(&T) -> U>(&self, f: F) -> Grid<U> {
        Grid {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl Grid<f32> {
    /// Sum of all cells.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Largest cell value (or `f32::NEG_INFINITY` on an empty grid).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest cell value (or `f32::INFINITY` on an empty grid).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Mean cell value; 0 for an empty grid.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Extracts the `bw × bh` sub-window whose lower corner cell is
    /// `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the grid bounds.
    pub fn window(&self, x0: usize, y0: usize, bw: usize, bh: usize) -> Grid<f32> {
        assert!(x0 + bw <= self.width && y0 + bh <= self.height);
        let mut out = Vec::with_capacity(bw * bh);
        for y in y0..y0 + bh {
            out.extend_from_slice(&self.data[y * self.width + x0..y * self.width + x0 + bw]);
        }
        Grid::from_vec(bw, bh, out)
    }
}

impl<T> Index<(usize, usize)> for Grid<T> {
    type Output = T;
    /// Indexes by `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &T {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        &self.data[y * self.width + x]
    }
}

impl<T> IndexMut<(usize, usize)> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut T {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        &mut self.data[y * self.width + x]
    }
}

impl<T: fmt::Debug> fmt::Display for Grid<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Grid {}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut g = Grid::filled(3, 2, 0i32);
        assert_eq!(g.len(), 6);
        g[(2, 1)] = 7;
        assert_eq!(g.get(2, 1), Some(&7));
        assert_eq!(g.get(3, 0), None);
        assert_eq!(g.get(0, 2), None);
        assert_eq!(g.row(1), &[0, 0, 7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let g = Grid::filled(2, 2, 0u8);
        let _ = g[(2, 0)];
    }

    #[test]
    fn from_vec_validates_len() {
        let g = Grid::from_vec(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(g[(0, 1)], 3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_wrong_len() {
        let _ = Grid::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn float_statistics() {
        let g = Grid::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        assert_eq!(g.sum(), 10.0);
        assert_eq!(g.max(), 4.0);
        assert_eq!(g.min(), 1.0);
        assert_eq!(g.mean(), 2.5);
    }

    #[test]
    fn window_extraction() {
        let g = Grid::from_vec(4, 4, (0..16).map(|v| v as f32).collect());
        let w = g.window(1, 2, 2, 2);
        assert_eq!(w.as_slice(), &[9.0, 10.0, 13.0, 14.0]);
    }

    #[test]
    fn map_preserves_shape() {
        let g = Grid::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        let h = g.map(|v| v * 2);
        assert_eq!(h.width(), 2);
        assert_eq!(h.height(), 3);
        assert_eq!(h[(1, 2)], 12);
    }
}
