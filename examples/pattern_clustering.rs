//! Pattern clustering: group layout clips into topology families by their
//! spectral features — the wafer-clustering analysis ([10, 11] in the
//! paper) that inspired the feature-tensor representation.
//!
//! Clips from four known archetypes are clustered *unsupervised* with
//! k-means over flattened feature tensors; the printed contingency table
//! shows how well the spectral representation separates the families.
//!
//! ```text
//! cargo run --release --example pattern_clustering
//! ```

use hotspot_core::FeaturePipeline;
use hotspot_datagen::{patterns, PatternKind};
use hotspot_features::{KMeans, KMeansConfig};
use rand::SeedableRng;

const PER_KIND: usize = 25;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kinds = [
        PatternKind::LineArray,
        PatternKind::ContactArray,
        PatternKind::Isolated,
        PatternKind::TipToTip,
    ];
    let pipeline = FeaturePipeline::new(10, 12, 8)?;

    // Generate labelled-by-construction clips and extract feature tensors.
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let mut features: Vec<Vec<f32>> = Vec::new();
    let mut truth: Vec<usize> = Vec::new();
    for (ki, &kind) in kinds.iter().enumerate() {
        for _ in 0..PER_KIND {
            let clip = patterns::sample_pattern(kind, &mut rng);
            let tensor = pipeline.extract(&clip)?;
            features.push(tensor.as_slice().to_vec());
            truth.push(ki);
        }
    }

    // Unsupervised clustering.
    let config = KMeansConfig {
        k: kinds.len(),
        max_iters: 200,
        tolerance: 1e-8,
    };
    let (model, assignments) = KMeans::fit(&features, &config, &mut rng)?;
    println!(
        "clustered {} clips into {} groups in {} iterations (inertia {:.1})\n",
        features.len(),
        config.k,
        model.iterations(),
        model.inertia()
    );

    // Contingency table: rows = true archetype, columns = cluster.
    println!(
        "{:<14} | cluster 0 | cluster 1 | cluster 2 | cluster 3",
        "archetype"
    );
    println!("{}", "-".repeat(62));
    let mut majority_total = 0usize;
    for (ki, &kind) in kinds.iter().enumerate() {
        let mut counts = vec![0usize; config.k];
        for (a, &t) in assignments.iter().zip(truth.iter()) {
            if t == ki {
                counts[*a] += 1;
            }
        }
        majority_total += counts.iter().max().copied().unwrap_or(0);
        println!(
            "{:<14} | {:>9} | {:>9} | {:>9} | {:>9}",
            format!("{kind:?}"),
            counts[0],
            counts[1],
            counts[2],
            counts[3]
        );
    }
    let purity = majority_total as f64 / features.len() as f64;
    println!("\ncluster purity: {:.0}%", 100.0 * purity);
    println!(
        "(each archetype concentrating in one column means the spectral feature\n\
         space separates layout topologies without any labels — the property\n\
         that makes it a good CNN input)"
    );
    Ok(())
}
