//! Feature-tensor anatomy: extract the paper's representation from a
//! hand-built clip, inspect the DC channel, and reconstruct the clip from
//! the compressed tensor (Figure 1 of the paper, interactively).
//!
//! ```text
//! cargo run --release --example feature_tensor
//! ```

use hotspot_dct::{extract_feature_tensor, reconstruct_image, FeatureTensorSpec};
use hotspot_geometry::{raster, Clip, Grid, Rect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1200x1200 nm clip: vertical lines on the left, a block on the
    // right.
    let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
    for i in 0..4 {
        clip.push(Rect::new(100 + i * 140, 100, 170 + i * 140, 1100)?);
    }
    clip.push(Rect::new(750, 300, 1100, 900)?);

    // Rasterise at 10 nm/px and extract a 12x12-block tensor keeping the
    // first 8 coefficients per block.
    let image = raster::rasterize_clip(&clip, 10);
    let spec = FeatureTensorSpec::new(12, 8)?;
    let tensor = extract_feature_tensor(&image, &spec)?;
    println!(
        "clip -> {}x{} raster -> {}x{}x{} feature tensor ({:.0}x compression)\n",
        image.width(),
        image.height(),
        tensor.grid_dim(),
        tensor.grid_dim(),
        tensor.coefficients(),
        image.len() as f64 / tensor.as_slice().len() as f64
    );

    // Channel 0 is each block's DC coefficient — a density thumbnail.
    println!("DC channel (block density map):");
    print_heatmap(&tensor.channel(0));

    // Channel 1 is the first horizontal-frequency coefficient: it lights
    // up where vertical line edges are.
    println!("\nchannel 1 (horizontal-frequency content):");
    print_heatmap(&tensor.channel(1).map(|v| v.abs()));

    // Reconstruct the clip from the 8-coefficient tensor.
    let back = reconstruct_image(&tensor, tensor.block_size())?;
    let mut err = 0.0f64;
    for (a, b) in image.iter().zip(back.iter()) {
        err += ((a - b) as f64).powi(2);
    }
    println!(
        "\nreconstruction RMSE from 8/100 coefficients: {:.4}",
        (err / image.len() as f64).sqrt()
    );
    println!("original (left) vs reconstruction (right), 60x60 px centre crop:");
    let crop_a = image.window(30, 30, 60, 60);
    let crop_b = back.window(30, 30, 60, 60);
    print_side_by_side(&crop_a, &crop_b);
    Ok(())
}

fn print_heatmap(g: &Grid<f32>) {
    let max = g.max().max(1e-6);
    for y in 0..g.height() {
        let row: String = (0..g.width()).map(|x| shade(g[(x, y)] / max)).collect();
        println!("  {row}");
    }
}

fn print_side_by_side(a: &Grid<f32>, b: &Grid<f32>) {
    for y in (0..a.height()).step_by(2) {
        let left: String = (0..a.width())
            .step_by(1)
            .map(|x| shade(a[(x, y)]))
            .collect();
        let right: String = (0..b.width())
            .step_by(1)
            .map(|x| shade(b[(x, y)]))
            .collect();
        println!("  {left}   {right}");
    }
}

fn shade(v: f32) -> char {
    match v {
        v if v < 0.15 => ' ',
        v if v < 0.4 => '.',
        v if v < 0.7 => 'o',
        _ => '#',
    }
}
