//! Full-chip scan: the deployment scenario the paper's introduction
//! motivates. A larger layout region is swept with a 1200×1200 nm window
//! by the streaming scan engine (`HotspotDetector::scan`); every window is
//! scored by a trained detector and the predicted hotspot map is compared
//! against full lithography simulation of each window.
//!
//! ```text
//! cargo run --release --example fullchip_scan
//! ```

use hotspot_core::detector::{DetectorConfig, HotspotDetector};
use hotspot_core::{FeaturePipeline, ScanConfig};
use hotspot_datagen::suite::SuiteSpec;
use hotspot_datagen::{patterns, PatternKind};
use hotspot_geometry::{Clip, Point, Rect};
use hotspot_litho::{simtime, LithoConfig, LithoSimulator};
use rand::SeedableRng;

const WINDOW_NM: i64 = 1200;
const TILES: i64 = 6; // 6x6 windows = a 7.2x7.2 µm region

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = LithoSimulator::new(LithoConfig::default())?;

    // 1. Train a detector on a generic mixed benchmark.
    println!("training detector on a synthetic mixed benchmark...");
    let data = SuiteSpec::industry3(0.005).build(&sim);
    let mut config = DetectorConfig::default();
    config.pipeline = FeaturePipeline::new(10, 12, 16)?;
    config.mgd.max_steps = 900;
    config.biased.rounds = 2;
    let detector = HotspotDetector::fit(&data.train, &config)?;

    // 2. Assemble a "chip region": a TILES x TILES mosaic of archetype
    //    patterns translated into place, merged into one layout clip.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let kinds = PatternKind::ALL;
    let mut tiles: Vec<Clip> = Vec::new();
    let mut shapes: Vec<Rect> = Vec::new();
    for ty in 0..TILES {
        for tx in 0..TILES {
            let kind = kinds[((ty * TILES + tx) as usize) % kinds.len()];
            let tile = patterns::sample_pattern(kind, &mut rng);
            let offset = Point::new(tx * WINDOW_NM, ty * WINDOW_NM);
            let window = tile.window().translated(offset);
            let clip =
                Clip::with_shapes(window, tile.shapes().iter().map(|r| r.translated(offset)));
            shapes.extend(clip.shapes().iter().copied());
            tiles.push(clip);
        }
    }
    let extent = Rect::new(0, 0, TILES * WINDOW_NM, TILES * WINDOW_NM)?;
    let layout = Clip::with_shapes(extent, shapes);

    // 3. Scan the layout in one call: rasterise once, transform each DCT
    //    block once, score every window position in a parallel batch.
    let scan_cfg = ScanConfig::new(WINDOW_NM)?.with_window_nm(WINDOW_NM)?;
    let report = detector.scan(&layout, &scan_cfg)?;
    println!(
        "\nscanned {} windows at {:.1} windows/s \
         (DCT block cache: {} computed, {} reused, {:.0}% hit rate)",
        report.windows.len(),
        report.windows_per_sec(),
        report.cache.computed,
        report.cache.hits,
        report.cache.hit_rate() * 100.0
    );

    // 4. Predicted map vs full simulation per window. Scan windows come
    //    back row-major (y outer, x inner), matching the mosaic order.
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut false_alarms = 0usize;
    println!("\npredicted hotspot map (P = flagged, . = clean, X = missed hotspot):\n");
    for ty in 0..TILES {
        let mut row = String::from("  ");
        for tx in 0..TILES {
            let idx = (ty * TILES + tx) as usize;
            let predicted = report.windows[idx].hotspot;
            let actual = sim.label_clip(&tiles[idx]);
            row.push(match (predicted, actual) {
                (true, true) => {
                    hits += 1;
                    'P'
                }
                (true, false) => {
                    false_alarms += 1;
                    'p'
                }
                (false, true) => {
                    misses += 1;
                    'X'
                }
                (false, false) => '.',
            });
            row.push(' ');
        }
        println!("{row}");
    }
    let total_hs = hits + misses;
    println!(
        "\n{} windows scanned: {} real hotspots, {} detected, {} missed, {} false alarms",
        TILES * TILES,
        total_hs,
        hits,
        misses,
        false_alarms
    );
    if !report.regions.is_empty() {
        println!(
            "flagged windows merge into {} hotspot region(s):",
            report.regions.len()
        );
        for r in &report.regions {
            println!(
                "  ({}, {})..({}, {}) nm: {} window(s), peak score {:.3}",
                r.x0_nm, r.y0_nm, r.x1_nm, r.y1_nm, r.windows, r.peak_score
            );
        }
    }

    // 5. The ODST argument: simulate only the flagged windows instead of
    //    every window.
    let full_sim = simtime::odst_seconds((TILES * TILES) as usize, 0, 0.0);
    let ml_flow = simtime::odst_seconds(hits, false_alarms, 1.0);
    println!(
        "lithography simulation of every window: {full_sim:.0} s;\n\
         ML-guided flow (simulate flagged only):  {ml_flow:.0} s  ({:.1}x faster)",
        full_sim / ml_flow.max(1.0)
    );
    Ok(())
}
