//! Quickstart: generate a synthetic benchmark, train the deep
//! biased-learning detector, and evaluate it — the whole paper in ~40
//! lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hotspot_core::detector::{DetectorConfig, HotspotDetector};
use hotspot_core::FeaturePipeline;
use hotspot_datagen::suite::SuiteSpec;
use hotspot_litho::{LithoConfig, LithoSimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The lithography oracle that labels layout clips.
    let sim = LithoSimulator::new(LithoConfig::default())?;

    // 2. A miniature ICCAD-2012-like benchmark (1 % of the paper's size).
    let data = SuiteSpec::iccad(0.01).build(&sim);
    println!(
        "benchmark: {} train clips ({} hotspots), {} test clips ({} hotspots)",
        data.train.len(),
        data.train.hotspot_count(),
        data.test.len(),
        data.test.hotspot_count()
    );

    // 3. Configure the detector: 12x12 feature-tensor grid with k = 16
    //    DCT coefficients, and a small training budget for a quick demo.
    let mut config = DetectorConfig::default();
    config.pipeline = FeaturePipeline::new(10, 12, 16)?;
    config.mgd.max_steps = 800;
    config.biased.rounds = 2; // one unbiased round + one ε = 0.1 fine-tune

    // 4. Train (feature tensors -> CNN -> MGD -> biased fine-tuning).
    println!("training...");
    let detector = HotspotDetector::fit(&data.train, &config)?;
    println!(
        "trained to ε = {:.1} in {:.0} s",
        detector.training_report().final_epsilon(),
        detector.training_report().total_train_time_s()
    );

    // 5. Evaluate with the paper's metrics.
    let result = detector.evaluate(&data.test)?;
    println!(
        "hotspot accuracy {:.1}%  |  false alarms {}  |  CPU {:.2} s  |  ODST {:.0} s",
        100.0 * result.accuracy,
        result.false_alarms,
        result.eval_time_s,
        result.odst_s
    );

    // 6. Score one clip like a physical-verification flow would.
    let sample = &data.test.samples()[0];
    let p = detector.predict_proba(&sample.clip)?;
    println!(
        "first test clip: predicted hotspot probability {:.2} (ground truth: {})",
        p,
        if sample.hotspot { "hotspot" } else { "clean" }
    );
    Ok(())
}
