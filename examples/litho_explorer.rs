//! Process-window explorer: sweep a line/space array through the
//! lithography oracle and watch its process window close as the pitch
//! shrinks — the physics behind every label in the suite.
//!
//! ```text
//! cargo run --release --example litho_explorer
//! ```

use hotspot_geometry::{Clip, Rect};
use hotspot_litho::{LithoConfig, LithoSimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = LithoSimulator::new(LithoConfig::default())?;
    let corners = &sim.config().corners;

    println!("line/space arrays, 50% duty cycle, full clip height");
    println!(
        "corners: {}",
        corners
            .iter()
            .map(|c| format!("(dose {:.2}, defocus {:.0} nm)", c.dose, c.defocus_nm))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("\n half-pitch | per-corner failures          | verdict");
    println!("------------+------------------------------+---------");
    for half_pitch in [40i64, 50, 60, 70, 80, 100, 120, 150] {
        let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
        let mut x = 100;
        while x + half_pitch < 1100 {
            clip.push(Rect::new(x, 0, x + half_pitch, 1200)?);
            x += 2 * half_pitch;
        }
        let report = sim.analyze_clip(&clip);
        let fails: Vec<String> = report
            .corner_reports()
            .iter()
            .map(|r| format!("{:>4}", r.failures()))
            .collect();
        println!(
            " {half_pitch:>7} nm | {} | {}",
            fails.join(" "),
            if report.is_hotspot() {
                "HOTSPOT"
            } else {
                "clean"
            }
        );
    }

    println!("\nline-end pullback: an isolated line tip under defocus");
    println!("\n line width | worst-corner failures | verdict");
    println!("------------+-----------------------+---------");
    for width in [50i64, 70, 90, 110, 140] {
        let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
        clip.push(Rect::new(600 - width / 2, 300, 600 + width / 2, 800)?);
        let report = sim.analyze_clip(&clip);
        println!(
            " {width:>7} nm | {:>21} | {}",
            report.worst_failures(),
            if report.is_hotspot() {
                "HOTSPOT"
            } else {
                "clean"
            }
        );
    }
    println!(
        "\nNote how failures appear first at the off-nominal corners: these\n\
         marginal patterns print at nominal conditions but have a process\n\
         window smaller than required — the paper's definition of a hotspot."
    );
    Ok(())
}
