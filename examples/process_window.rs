//! Process-window maps: visualise the dose/defocus landscape whose size
//! *defines* a hotspot.
//!
//! ```text
//! cargo run --release --example process_window
//! ```

use hotspot_geometry::{Clip, Rect};
use hotspot_litho::window::{default_grid, process_window_map};
use hotspot_litho::{LithoConfig, LithoSimulator};

fn line_array(half_pitch: i64) -> Result<Clip, hotspot_geometry::GeometryError> {
    let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
    let mut x = 100;
    while x + half_pitch < 1100 {
        clip.push(Rect::new(x, 0, x + half_pitch, 1200)?);
        x += 2 * half_pitch;
    }
    Ok(clip)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = LithoSimulator::new(LithoConfig::default())?;
    let (doses, defocuses) = default_grid();

    for half_pitch in [100i64, 70, 60, 55] {
        let clip = line_array(half_pitch)?;
        let map = process_window_map(&sim, &clip, &doses, &defocuses)?;
        println!(
            "\n{half_pitch} nm half-pitch line/space — window area {:.0}% \
             (o = prints, x = fails):",
            100.0 * map.window_area()
        );
        print!("defocus ");
        for &d in map.doses() {
            print!("{:>5.2}", d);
        }
        println!("   <- dose");
        for (fi, &f) in map.defocuses_nm().iter().enumerate() {
            print!("{f:>4.0} nm ");
            for di in 0..map.doses().len() {
                print!("    {}", if map.passes_at(di, fi) { 'o' } else { 'x' });
            }
            println!();
        }
        println!("is hotspot per 5-corner check: {}", sim.label_clip(&clip));
    }
    println!(
        "\nThe window shrinks as the pitch approaches the optics' resolution\n\
         limit; the hotspot label flips once the required corners fall outside\n\
         the usable window — the paper's hotspot definition, made visible."
    );
    Ok(())
}
