#!/bin/bash
# Regenerates every table and figure (see DESIGN.md experiment index).
set -x
cd /root/repo
B=./target/release
$B/fig1_reconstruction --out results > results/fig1.log 2>&1
$B/table2 --scale 0.05 --steps 1600 --k 32 --rounds 4 --print-arch 1 --out results > results/table2.log 2>&1
$B/fig3_sgd_vs_mgd --scale 0.05 --steps 800 --k 32 --out results > results/fig3.log 2>&1
$B/fig4_bias_vs_shift --scale 0.05 --steps 1600 --k 32 --out results > results/fig4.log 2>&1
$B/ablation_k --scale 0.05 --steps 800 --out results > results/ablation_k.log 2>&1
$B/ablation_bias --scale 0.05 --steps 800 --out results > results/ablation_bias.log 2>&1
echo DONE_ALL
