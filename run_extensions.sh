#!/bin/bash
# Extension studies (run after run_experiments.sh).
set -x
cd /root/repo
B=./target/release
$B/ablation_activation --scale 0.05 --steps 800 --out results > results/ablation_activation.log 2>&1
$B/calibration_study --scale 0.05 --steps 1200 --out results > results/calibration_study.log 2>&1
$B/ablation_augment --scale 0.005 --steps 600 --out results > results/ablation_augment.log 2>&1
echo DONE_EXT
