//! Umbrella crate for the hotspot-detection suite; see the member crates.
