#!/usr/bin/env bash
# Fails when non-test code in the hardened crates (core, cli, nn, server)
# calls .unwrap() or .expect(...). Recoverable failures there must flow
# through the CoreError / CliError / NnError / ApiError taxonomies; genuine
# invariants use an explicit match + panic!/unreachable! with a message,
# which this gate deliberately does not count.
#
# "Non-test" means everything above the first `#[cfg(test)]` in each file
# (the repo convention keeps unit tests in a trailing module). Commented
# lines are ignored.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
for file in $(find crates/core/src crates/cli/src crates/nn/src crates/server/src -name '*.rs' | sort); do
  hits=$(awk '
    /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
    /^[[:space:]]*\/\// { next }
    /\.unwrap\(\)|\.expect\(/ { printf "%s:%d: %s\n", FILENAME, FNR, $0 }
  ' "$file")
  if [ -n "$hits" ]; then
    echo "$hits"
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo
  echo "panic gate: new .unwrap()/.expect( in non-test code under crates/{core,cli,nn,server}/src." >&2
  echo "Return a CoreError/CliError/NnError/ApiError instead, or use an explicit match + panic! for" >&2
  echo "a true invariant (with a message saying why it cannot happen)." >&2
  exit 1
fi
echo "panic gate: clean"
