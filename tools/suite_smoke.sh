#!/usr/bin/env bash
# Benchmark-suite smoke test against the real binaries: generate the
# golden-mini corner suite twice and assert bit-identical manifests,
# validate the manifest and per-corner label files, train/eval on the
# generated data, and run the `suites` bench at a tiny budget so CI
# archives a fresh results/BENCH_suites.json.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/hotspot}
if [ ! -x "$BIN" ]; then
  echo "building $BIN..."
  cargo build --release -p hotspot-cli
fi
if [ ! -x target/release/suites ]; then
  echo "building bench binaries..."
  cargo build --release -p hotspot-bench
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "generating golden-mini twice..."
"$BIN" gen --dir "$work/a" --suite golden-mini
"$BIN" gen --dir "$work/b" --suite golden-mini
for f in manifest.txt train.clips train.labels train.corners \
         test.clips test.labels test.corners; do
  cmp -s "$work/a/$f" "$work/b/$f" \
    || { echo "FAIL: $f differs between identical-seed generations"; exit 1; }
done
echo "OK: regeneration is bit-identical (manifest, clips, labels, corners)"

echo "validating the manifest and corner-label files..."
python3 - "$work/a" <<'EOF'
import re, sys, zlib
from pathlib import Path

d = Path(sys.argv[1])
lines = (d / "manifest.txt").read_text().splitlines()
assert lines[0] == "hotspot-suite-manifest v1", f"bad header: {lines[0]}"
assert lines[-1] == "end", "missing end terminator"
# The body covered by total-crc includes the header line.
body = "".join(line + "\n" for line in lines[:-2])
recorded = re.fullmatch(r"total-crc ([0-9a-f]{8})", lines[-2]).group(1)
computed = zlib.crc32(body.encode()) & 0xFFFFFFFF
assert int(recorded, 16) == computed, \
    f"total-crc mismatch: recorded {recorded}, computed {computed:08x}"

splits = {}
n_corners = None
for line in lines[1:-2]:
    if line.startswith("corner-schema "):
        m = re.fullmatch(r"corner-schema dose(\d+)\[[^\]]*\]xdefocus(\d+)\[[^\]]*\]nm", line)
        assert m, f"unparseable corner schema: {line}"
        n_corners = int(m.group(1)) * int(m.group(2))
    if line.startswith("split "):
        m = re.fullmatch(
            r"split (\w+) count (\d+) hotspots (\d+) clips-crc [0-9a-f]{8} "
            r"labels-crc [0-9a-f]{8}(?: corners-crc [0-9a-f]{8})?", line)
        assert m, f"unparseable split line: {line}"
        splits[m.group(1)] = (int(m.group(2)), int(m.group(3)))
assert set(splits) == {"train", "test"}, f"splits: {set(splits)}"
assert n_corners, "golden-mini must carry a corner schema"

for name, (count, hotspots) in splits.items():
    labels = [l for l in (d / f"{name}.labels").read_text().split() if l]
    assert len(labels) == count, f"{name}: {len(labels)} labels for count {count}"
    assert labels.count("1") == hotspots, f"{name}: hotspot count mismatch"
    corners = [l for l in (d / f"{name}.corners").read_text().splitlines() if l.strip()]
    assert len(corners) == count, f"{name}: {len(corners)} corner lines for count {count}"
    for i, (label, line) in enumerate(zip(labels, corners)):
        sev, bits = line.split()
        assert len(bits) == n_corners and set(bits) <= {"0", "1"}, \
            f"{name}:{i + 1}: bad fail bits {bits!r}"
        assert ("1" in bits) == (label == "1"), \
            f"{name}:{i + 1}: corner bits disagree with the scalar label"
        assert (int(sev) > 0) == (label == "1"), \
            f"{name}:{i + 1}: severity sign disagrees with the scalar label"
print(f"manifest OK: {splits['train'][0]} train / {splits['test'][0]} test clips, "
      f"{n_corners} corners per clip")
EOF

echo "training and evaluating on the generated suite..."
"$BIN" train --clips "$work/a/train.clips" --labels "$work/a/train.labels" \
       --k 4 --steps 80 --rounds 1 --batch 8 --seed 11 --model "$work/m.hsnn"
"$BIN" eval --clips "$work/a/test.clips" --labels "$work/a/test.labels" \
       --model "$work/m.hsnn"

echo "running the suite-matrix bench at a tiny budget..."
./target/release/suites --scale 0.004 --steps 60 --k 4 --rounds 1 \
    --probes 8 --suites topo > /dev/null

echo "validating results/BENCH_suites.json..."
python3 - results/BENCH_suites.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

for key in ("benchmark", "scale", "train_steps", "probes_per_family", "suites"):
    assert key in report, f"missing {key}"
assert report["benchmark"] == "suite-matrix"
assert report["suites"], "no suites in report"
for suite in report["suites"]:
    for key in ("suite", "train_clips", "test_clips", "accuracy", "false_alarms",
                "gen_clips_per_s", "predict_clips_per_s", "families"):
        assert key in suite, f"missing suites[].{key}"
    assert 0.0 <= suite["accuracy"] <= 1.0, "accuracy out of range"
    assert suite["gen_clips_per_s"] > 0 and suite["predict_clips_per_s"] > 0
    assert suite["families"], f"{suite['suite']}: no per-family entries"
    for fam in suite["families"]:
        assert 0.0 <= fam["probe_accuracy"] <= 1.0, \
            f"{suite['suite']}/{fam['family']}: probe accuracy out of range"
    if suite["corner_schema"] is not None:
        head = suite["corner_head"]
        assert head and head["n_corners"] > 0, "corner suite missing corner head"
        assert 0.0 <= head["corner_accuracy"] <= 1.0
names = ", ".join(s["suite"] for s in report["suites"])
print(f"report OK: {names}")
EOF

echo "suite smoke test passed"
