#!/usr/bin/env bash
# Crash-safety smoke test against the real binary: generate a tiny
# benchmark, SIGKILL a checkpointing training run mid-epoch, resume it,
# and require the final model to be byte-identical to an uninterrupted
# run. Mirrors the `kill_resume` integration test, but exercises the
# packaged release binary the way an operator would.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/hotspot}
if [ ! -x "$BIN" ]; then
  echo "building $BIN..."
  cargo build --release -p hotspot-cli
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$BIN" gen --dir "$work" --suite iccad --scale 0.001

train_flags=(--clips "$work/train.clips" --labels "$work/train.labels"
             --k 4 --steps 120 --rounds 2 --batch 8 --seed 11)

echo "reference run (uninterrupted)..."
"$BIN" train "${train_flags[@]}" --model "$work/reference.hsnn"

echo "victim run (SIGKILL at first checkpoint)..."
"$BIN" train "${train_flags[@]}" --model "$work/model.hsnn" --checkpoint-every 20 &
victim=$!
for _ in $(seq 1 6000); do
  [ -f "$work/model.hsnn.ckpt" ] && break
  kill -0 "$victim" 2>/dev/null || break
  sleep 0.05
done
kill -KILL "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
[ -f "$work/model.hsnn.ckpt" ] || { echo "no checkpoint was written" >&2; exit 1; }

echo "resume run..."
"$BIN" train "${train_flags[@]}" --model "$work/model.hsnn" \
       --checkpoint-every 20 --resume "$work/model.hsnn.ckpt"

cmp "$work/model.hsnn" "$work/reference.hsnn" || {
  echo "resumed model differs from the uninterrupted run" >&2
  exit 1
}
echo "kill/resume smoke: resumed model is byte-identical"
