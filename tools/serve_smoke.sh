#!/usr/bin/env bash
# Serve-daemon smoke test against the real binaries: train a tiny model,
# start `hotspot serve` on a Unix socket, and drive every request op
# through `hotspot client` — status, predict (cross-checked against
# offline `hotspot predict`), scan (cross-checked field-by-field against
# `hotspot scan --report`), zero-downtime reload, structured errors for a
# bad reload and malformed JSON, and graceful shutdown. Also runs the
# `serve` bench at a tiny budget so CI archives a fresh
# results/BENCH_serve.json.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/hotspot}
if [ ! -x "$BIN" ]; then
  echo "building $BIN..."
  cargo build --release -p hotspot-cli
fi

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "generating data and training two tiny models..."
"$BIN" gen --dir "$work" --suite iccad --scale 0.001
"$BIN" train --clips "$work/train.clips" --labels "$work/train.labels" \
       --k 4 --steps 60 --rounds 1 --batch 8 --seed 11 --model "$work/m1.hsnn" \
       --cascade "$work/pre.hsab" --cascade-grid 12 --cascade-rounds 24
"$BIN" train --clips "$work/train.clips" --labels "$work/train.labels" \
       --k 4 --steps 40 --rounds 1 --batch 8 --seed 12 --model "$work/m2.hsnn"
"$BIN" genlayout --out "$work/chip.clips" --tiles 3 --seed 7

sock="$work/hs.sock"
echo "starting the daemon on $sock..."
"$BIN" serve --socket "$sock" --model "$work/m1.hsnn" --cascade "$work/pre.hsab" \
       >"$work/serve.out" 2>"$work/serve.err" &
daemon_pid=$!
for _ in $(seq 1 200); do
  [ -S "$sock" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || { cat "$work/serve.err" >&2; exit 1; }
  sleep 0.05
done
[ -S "$sock" ] || { echo "daemon socket never appeared" >&2; exit 1; }

echo "checking status..."
"$BIN" client --socket "$sock" --op status --id smoke > "$work/status.json"
python3 - "$work/status.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["v"] == 1, f"wrong schema version: {r.get('v')}"
assert r["ok"] is True and r["op"] == "status" and r["id"] == "smoke"
assert r["model"]["model_crc"].startswith("0x"), "provenance crc missing"
assert r["model"]["cascade_crc"].startswith("0x"), "cascade crc missing"
for key in ("requests", "predicts", "clips", "scans", "reloads", "errors",
            "rejected_busy", "batches", "max_batch"):
    assert key in r["counters"], f"missing counter {key}"
print(f"status OK: serving {r['model']['model_crc']}")
EOF

echo "cross-checking daemon predict against offline predict..."
"$BIN" predict --clips "$work/test.clips" --model "$work/m1.hsnn" > "$work/offline.tsv"
"$BIN" client --socket "$sock" --op predict --clips "$work/test.clips" \
       > "$work/predict.json"
python3 - "$work/predict.json" "$work/offline.tsv" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["v"] == 1 and r["ok"] is True and r["op"] == "predict"
offline = [float(line.split("\t")[0]) for line in open(sys.argv[2])]
assert len(r["scores"]) == len(offline), "clip count mismatch"
for served, ref in zip(r["scores"], offline):
    # `hotspot predict` prints 4 decimals; the daemon score must round to it.
    assert abs(served - ref) < 6e-5, f"daemon {served} vs offline {ref}"
for served, hot in zip(r["scores"], r["hotspots"]):
    assert hot == (served > r["threshold"]), "verdict disagrees with score"
assert r["batched"] >= len(offline), "batched below the request's own clips"
print(f"predict OK: {len(offline)} clips bit-consistent with offline scoring")
EOF

echo "cross-checking daemon scan against hotspot scan --report..."
"$BIN" scan --layout "$work/chip.clips" --model "$work/m1.hsnn" \
       --stride 600 --cascade "$work/pre.hsab" --report "$work/offline-scan.json"
"$BIN" client --socket "$sock" --op scan --layout "$work/chip.clips" \
       --stride 600 > "$work/scan.json"
python3 - "$work/scan.json" "$work/offline-scan.json" <<'EOF'
import json, sys
reply = json.load(open(sys.argv[1]))
offline = json.load(open(sys.argv[2]))
assert reply["v"] == 1 and reply["ok"] is True and reply["op"] == "scan"
report = reply["report"]
assert report["v"] == offline["v"] == 1
assert report["provenance"] == offline["provenance"], \
    "daemon and offline scan disagree on model provenance"
for key in ("layout", "scan", "positives"):
    assert report[key] == offline[key], f"report.{key} diverged"
assert len(report["regions"]) == len(offline["regions"]), "region count diverged"
served = [(w["x_nm"], w["y_nm"], w["score"]) for w in report["windows"]]
ref = [(w["x_nm"], w["y_nm"], w["score"]) for w in offline["windows"]]
assert served == ref, "per-window scores diverged between daemon and CLI scan"
print(f"scan OK: {len(served)} windows identical to the offline report")
EOF

echo "reloading to the second model with zero downtime..."
old_crc=$(python3 -c "import json;print(json.load(open('$work/status.json'))['model']['model_crc'])")
"$BIN" client --socket "$sock" --op reload --model-path "$work/m2.hsnn" \
       > "$work/reload.json"
python3 - "$work/reload.json" "$old_crc" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["v"] == 1 and r["ok"] is True and r["op"] == "reload"
assert r["model"]["model_crc"] != sys.argv[2], "reload kept the old model crc"
assert r["model"]["cascade_crc"] is None, "m2 was served with a stale cascade"
print(f"reload OK: now serving {r['model']['model_crc']}")
EOF

echo "checking structured errors exit nonzero..."
if "$BIN" client --socket "$sock" --op reload --model-path /nonexistent.hsnn \
     2>"$work/badreload.err"; then
  echo "bad reload unexpectedly succeeded" >&2; exit 1
fi
grep -q '"kind": "model"' "$work/badreload.err" || {
  echo "bad reload did not report a structured model error:" >&2
  cat "$work/badreload.err" >&2; exit 1; }
if "$BIN" client --socket "$sock" --raw '{definitely not json' \
     2>"$work/badjson.err"; then
  echo "malformed JSON unexpectedly succeeded" >&2; exit 1
fi
grep -q '"kind": "parse"' "$work/badjson.err" || {
  echo "malformed JSON did not report a structured parse error:" >&2
  cat "$work/badjson.err" >&2; exit 1; }

echo "shutting down gracefully..."
"$BIN" client --socket "$sock" --op shutdown > "$work/shutdown.json"
python3 -c "import json;r=json.load(open('$work/shutdown.json'));assert r['ok'] and r['op']=='shutdown'"
wait "$daemon_pid"
daemon_pid=""
[ -S "$sock" ] && { echo "daemon left its socket file behind" >&2; exit 1; }
grep -q "served" "$work/serve.out" || { echo "daemon wrote no summary" >&2; exit 1; }

echo "running the serve bench at a tiny budget..."
cargo run --release -p hotspot-bench --bin serve -- \
  --clients 2 --requests 10 --clips 2 >/dev/null
test -s results/BENCH_serve.json || { echo "bench wrote no BENCH_serve.json" >&2; exit 1; }

echo "serve smoke passed."
