#!/usr/bin/env bash
# Active-learning smoke test against the real binaries: train with a tiny
# unlabeled pool, assert the labeler was invoked for a strict subset of
# the pool, resume from the final checkpoint without re-invoking the
# oracle, and run the `active` bench at a tiny budget so CI archives a
# fresh results/BENCH_active.json.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/hotspot}
if [ ! -x "$BIN" ]; then
  echo "building $BIN..."
  cargo build --release -p hotspot-cli
fi
if [ ! -x target/release/active ]; then
  echo "building bench binaries..."
  cargo build --release -p hotspot-bench
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

POOL=12

echo "generating seed data and running a 2-round active-learning train..."
"$BIN" gen --dir "$work" --suite iccad --scale 0.001
run_train() {
  "$BIN" train --clips "$work/train.clips" --labels "$work/train.labels" \
         --k 4 --steps 80 --rounds 1 --batch 8 --seed 11 --model "$work/m.hsnn" \
         --active 2 --active-batch 3 --pool "$POOL" --pool-seed 5 \
         --checkpoint-every 25 "$@"
}
out=$(run_train)
echo "$out"

calls=$(echo "$out" | sed -n 's/.*labeler calls \([0-9]*\).*/\1/p')
[ -n "$calls" ] || { echo "FAIL: no labeler-call count in output"; exit 1; }
if [ "$calls" -ge "$POOL" ]; then
  echo "FAIL: active training labelled the whole pool ($calls of $POOL)"
  exit 1
fi
echo "OK: labeler called $calls times for a pool of $POOL"

echo "resuming from the final checkpoint (every batch already paid for)..."
resumed=$(run_train --resume "$work/m.hsnn.ckpt")
echo "$resumed"
echo "$resumed" | grep -q "resumed with 2 batch(es) already labelled" \
  || { echo "FAIL: resume did not replay the checkpointed batches"; exit 1; }
resumed_calls=$(echo "$resumed" | sed -n 's/.*labeler calls \([0-9]*\).*/\1/p')
if [ "$resumed_calls" != "$calls" ]; then
  echo "FAIL: resume re-invoked the oracle ($resumed_calls vs $calls calls)"
  exit 1
fi
echo "OK: checkpoint round-trips without re-labelling"

echo "running the label-efficiency bench at a tiny budget..."
./target/release/active --scale 0.002 --steps 60 --k 4 --rounds 1 \
    --pool 16 --active-rounds 2 --active-batch 3 > /dev/null

echo "validating results/BENCH_active.json..."
python3 - results/BENCH_active.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

for key in ("benchmark", "pool_size", "rounds", "batch", "full_supervision",
            "active", "random", "active_auc_fraction_of_full",
            "labels_fraction_of_pool", "meets_99pct_auc_at_half_pool_labels"):
    assert key in report, f"missing {key}"

pool = report["pool_size"]
full = report["full_supervision"]
assert full["labeler_calls"] == pool, "full supervision must label the pool"
for arm in ("active", "random"):
    entry = report[arm]
    for key in ("labeler_calls", "labeler_cost_s", "auc", "curve"):
        assert key in entry, f"missing {arm}.{key}"
    assert 0 < entry["labeler_calls"] < pool, \
        f"{arm} arm must label a strict subset of the pool"
    assert 0.0 <= entry["auc"] <= 1.0, f"{arm} AUC out of range"
    labels = [p["labels"] for p in entry["curve"]]
    assert labels == sorted(labels), f"{arm} curve labels not monotone"
assert report["active"]["curve"][0]["labels"] == 0, \
    "active curve must start at zero labels (the seed-only model)"
print(f"report OK: active {report['active']['labeler_calls']} labels "
      f"-> AUC {report['active']['auc']:.3f}, "
      f"full {full['labeler_calls']} -> {full['auc']:.3f}")
EOF

echo "active-learning smoke test passed"
