#!/usr/bin/env bash
# Full-layout scan smoke test against the real binaries: generate a tiny
# benchmark, train a small model, synthesise a layout, scan it with a JSON
# report, and validate the report's schema. Also runs the `scan` bench at a
# tiny budget so CI archives a fresh results/BENCH_scan.json.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/hotspot}
if [ ! -x "$BIN" ]; then
  echo "building $BIN..."
  cargo build --release -p hotspot-cli
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "generating data and training a tiny model with a cascade prefilter..."
"$BIN" gen --dir "$work" --suite iccad --scale 0.001
"$BIN" train --clips "$work/train.clips" --labels "$work/train.labels" \
       --k 4 --steps 80 --rounds 1 --batch 8 --seed 11 --model "$work/m.hsnn" \
       --cascade "$work/pre.hsab" --cascade-grid 12 --cascade-rounds 24

echo "synthesising a layout and scanning it..."
"$BIN" genlayout --out "$work/chip.clips" --tiles 3 --seed 7
"$BIN" scan --layout "$work/chip.clips" --model "$work/m.hsnn" \
       --stride 600 --report "$work/scan.json"
"$BIN" scan --layout "$work/chip.clips" --model "$work/m.hsnn" \
       --stride 600 --cascade "$work/pre.hsab" --report "$work/cascade.json"

echo "validating the JSON report schema..."
python3 - "$work/scan.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

def require(obj, path, keys):
    for key in keys:
        assert key in obj, f"missing {path}.{key}"

require(report, "report",
        ["v", "provenance", "layout", "scan", "cache", "throughput",
         "execution", "positives", "regions", "windows"])
assert report["v"] == 1, f"wrong schema version: {report['v']}"
require(report["provenance"], "provenance",
        ["model_crc", "model_version", "cascade_crc"])
assert report["provenance"]["model_crc"].startswith("0x"), \
    "provenance carries no model crc"
require(report["layout"], "layout", ["width_nm", "height_nm"])
require(report["scan"], "scan",
        ["stride_nm", "window_nm", "threshold", "grid_cols", "grid_rows"])
require(report["cache"], "cache",
        ["blocks_computed", "blocks_reused", "hit_rate"])
require(report["throughput"], "throughput",
        ["windows", "elapsed_s", "windows_per_sec", "cnn_evals",
         "cnn_evals_per_window"])
require(report["execution"], "execution",
        ["threads", "prepare_s", "scan_s", "merge_s"])
assert report["execution"]["threads"] >= 1, "scan resolved zero threads"
require(report["cascade"], "cascade", ["enabled"])
assert report["cascade"]["enabled"] is False, \
    "plain scan unexpectedly reports an enabled cascade"
assert report["throughput"]["cnn_evals"] == report["throughput"]["windows"], \
    "plain scan must CNN-score every window"

scan = report["scan"]
windows = report["windows"]
assert len(windows) == scan["grid_cols"] * scan["grid_rows"], \
    "window list does not cover the scan grid"
for w in windows:
    require(w, "window", ["x_nm", "y_nm", "score", "hotspot", "stage",
                          "margin"])
    assert 0.0 <= w["score"] <= 1.0, f"score out of range: {w['score']}"
    assert w["stage"] in ("cnn", "prefilter"), f"bad stage: {w['stage']}"
for r in report["regions"]:
    require(r, "region",
            ["x0_nm", "y0_nm", "x1_nm", "y1_nm", "windows",
             "peak_score", "mean_score"])

cache = report["cache"]
# Stride 600 < window 1200 on a block-aligned grid: the block-DCT cache
# must actually fire.
assert cache["blocks_reused"] > 0, "aligned scan never reused a DCT block"
assert cache["hit_rate"] > 0.0, "aligned scan reported a zero hit rate"
assert report["positives"] == sum(1 for w in windows if w["hotspot"]), \
    "positives count disagrees with flagged windows"
print(f"report OK: {len(windows)} windows, "
      f"{report['positives']} flagged, "
      f"{cache['hit_rate']:.0%} cache hit rate")
EOF

echo "validating the cascade scan report against the full scan..."
python3 - "$work/scan.json" "$work/cascade.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    full = json.load(f)
with open(sys.argv[2]) as f:
    report = json.load(f)

cascade = report["cascade"]
for key in ("enabled", "margin_threshold", "cleared", "forwarded"):
    assert key in cascade, f"missing cascade.{key}"
assert cascade["enabled"] is True, "cascade scan did not record its prefilter"

windows = report["windows"]
assert len(windows) == len(full["windows"]), "cascade changed the scan grid"
assert cascade["cleared"] + cascade["forwarded"] == len(windows), \
    "cascade counters do not partition the windows"
assert report["throughput"]["cnn_evals"] == cascade["forwarded"], \
    "cnn_evals disagrees with the forwarded count"

for w, fw in zip(windows, full["windows"]):
    assert (w["x_nm"], w["y_nm"]) == (fw["x_nm"], fw["y_nm"])
    assert w["margin"] is not None, "cascade window lost its margin"
    if w["stage"] == "cnn":
        # Survivors must carry the full scan's score (same JSON rendering
        # of bit-identical floats).
        assert w["score"] == fw["score"], \
            f"survivor at ({w['x_nm']}, {w['y_nm']}) diverged from the full scan"
    else:
        assert w["stage"] == "prefilter", f"bad stage: {w['stage']}"
        assert w["score"] == 0.0 and not w["hotspot"], \
            "cleared window carries a CNN score or flag"

print(f"cascade report OK: {cascade['cleared']} cleared, "
      f"{cascade['forwarded']} forwarded, "
      f"{report['throughput']['cnn_evals_per_window']:.2f} CNN evals/window")
EOF

echo "running the scan bench at a tiny budget..."
cargo run --release -p hotspot-bench --bin scan -- \
  --scale 0.004 --steps 40 --tiles 3 --reps 1 >/dev/null
test -s results/BENCH_scan.json || { echo "bench wrote no BENCH_scan.json" >&2; exit 1; }

echo "scan smoke passed."
