#!/usr/bin/env bash
# Execution-engine smoke test: run the `engine` bench (per-window planned
# arena path, batched planned path, and the pre-refactor scoring loop,
# interleaved in one process) at a tiny budget and validate the report it
# writes. The gate enforces the non-negotiable engine invariants on every
# commit:
#   - the planned path performs ZERO steady-state allocations per window
#   - the batched path performs ZERO steady-state allocations per block
#   - three-way bit-identity: batched planned == per-window planned ==
#     the legacy scoring loop
#   - the batched path spends strictly fewer GEMM calls per window than
#     the per-window planned path (one call per layer per block)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "running the engine bench at a tiny budget..."
cargo run --release -p hotspot-bench --bin engine -- \
  --windows 96 --reps 3 >/dev/null
test -s results/BENCH_engine.json || { echo "bench wrote no BENCH_engine.json" >&2; exit 1; }

echo "validating BENCH_engine.json..."
python3 - results/BENCH_engine.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

for key in ("benchmark", "baseline", "windows", "feature_shape", "reps",
            "legacy", "planned", "batched", "speedup", "bit_identical"):
    assert key in report, f"missing report.{key}"
for arm in ("legacy", "planned", "batched"):
    for key in ("secs", "windows_per_sec"):
        assert key in report[arm], f"missing report.{arm}.{key}"
    assert report[arm]["secs"] > 0.0, f"{arm} measured no time"
    assert report[arm]["windows_per_sec"] > 0.0, f"{arm} scored no windows"

# Three-way bit-identity: the bench computes `bit_identical` as
# (legacy == planned) AND (legacy == batched), and aborts before writing
# the report if either leg diverges.
assert report["bit_identical"] is True, \
    "batched/planned logits diverged from the legacy scoring loop"
assert report["planned"]["allocs_per_window"] == 0.0, \
    ("planned path allocated in steady state: "
     f"{report['planned']['allocs_per_window']} allocs/window")
assert report["batched"]["allocs_per_block"] == 0.0, \
    ("batched path allocated in steady state: "
     f"{report['batched']['allocs_per_block']} allocs/block")
# Batching must amortise GEMM invocations: one call per layer per block
# instead of one per layer per window.
assert report["batched"]["block"] >= 1, "batched arm ran without a block"
assert 0.0 < report["batched"]["gemm_calls_per_window"] \
        < report["planned"]["gemm_calls_per_window"], \
    (f"batched GEMM calls/window {report['batched']['gemm_calls_per_window']} "
     f"not below planned {report['planned']['gemm_calls_per_window']}")
# The legacy loop allocates every window; if it stops doing so the
# baseline arm is no longer measuring what it claims to.
assert report["legacy"]["allocs_per_window"] > 0.0, \
    "legacy arm reported zero allocations - baseline reconstruction broken"

print(f"engine OK: {report['windows']} windows, "
      f"speedup {report['speedup']:.2f}x planned / "
      f"{report['batched']['speedup_vs_legacy']:.2f}x batched (block "
      f"{report['batched']['block']}), "
      f"planned allocs/window {report['planned']['allocs_per_window']:.3f}, "
      f"batched allocs/block {report['batched']['allocs_per_block']:.3f}, "
      f"GEMM/window {report['planned']['gemm_calls_per_window']:.2f} -> "
      f"{report['batched']['gemm_calls_per_window']:.3f}, "
      f"bit-identical {report['bit_identical']}")
EOF

echo "engine smoke passed."
