#!/usr/bin/env bash
# Execution-engine smoke test: run the `engine` bench (planned arena path
# vs the pre-refactor scoring loop, interleaved in one process) at a tiny
# budget and validate the report it writes. The gate enforces the two
# non-negotiable engine invariants on every commit:
#   - the planned path performs ZERO steady-state allocations per window
#   - planned logits are bit-identical to the legacy scoring loop
set -euo pipefail

cd "$(dirname "$0")/.."

echo "running the engine bench at a tiny budget..."
cargo run --release -p hotspot-bench --bin engine -- \
  --windows 96 --reps 3 >/dev/null
test -s results/BENCH_engine.json || { echo "bench wrote no BENCH_engine.json" >&2; exit 1; }

echo "validating BENCH_engine.json..."
python3 - results/BENCH_engine.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

for key in ("benchmark", "baseline", "windows", "feature_shape", "reps",
            "legacy", "planned", "speedup", "bit_identical"):
    assert key in report, f"missing report.{key}"
for arm in ("legacy", "planned"):
    for key in ("secs", "windows_per_sec", "allocs_per_window"):
        assert key in report[arm], f"missing report.{arm}.{key}"
    assert report[arm]["secs"] > 0.0, f"{arm} measured no time"
    assert report[arm]["windows_per_sec"] > 0.0, f"{arm} scored no windows"

# The two invariants the execution engine guarantees.
assert report["bit_identical"] is True, \
    "planned logits diverged from the legacy scoring loop"
assert report["planned"]["allocs_per_window"] == 0.0, \
    ("planned path allocated in steady state: "
     f"{report['planned']['allocs_per_window']} allocs/window")
# The legacy loop allocates every window; if it stops doing so the
# baseline arm is no longer measuring what it claims to.
assert report["legacy"]["allocs_per_window"] > 0.0, \
    "legacy arm reported zero allocations - baseline reconstruction broken"

print(f"engine OK: {report['windows']} windows, "
      f"speedup {report['speedup']:.2f}x, "
      f"planned allocs/window {report['planned']['allocs_per_window']:.3f}, "
      f"bit-identical {report['bit_identical']}")
EOF

echo "engine smoke passed."
