#!/usr/bin/env bash
# Execution-engine smoke test: run the `engine` bench (per-window planned
# arena path, batched planned path, and the pre-refactor scoring loop,
# interleaved in one process) at a tiny budget and validate the report it
# writes. The gate enforces the non-negotiable engine invariants on every
# commit:
#   - the planned path performs ZERO steady-state allocations per window
#   - the batched path performs ZERO steady-state allocations per block
#   - with SIMD force-disabled (HOTSPOT_SIMD=scalar): three-way
#     bit-identity — batched planned == per-window planned == the legacy
#     scoring loop, bit for bit
#   - with the detected SIMD backend: planned == batched bit-identical,
#     both within the bounded-ULP envelope (64 ULP / 1e-5) of the scalar
#     oracle scores
#   - the batched path spends strictly fewer GEMM calls per window than
#     the per-window planned path (one call per layer per block)
#   - the banded scan is deterministic across thread counts: a CLI scan
#     at --threads 1 and --threads 2 yields identical windows, regions
#     and cache totals
set -euo pipefail

cd "$(dirname "$0")/.."

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

validate_report() {
  python3 - "$1" "$2" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
mode = sys.argv[2]  # "scalar" (forced) or "auto" (detected backend)

for key in ("benchmark", "baseline", "windows", "feature_shape", "reps",
            "kernel_backend", "legacy", "planned", "batched",
            "scalar_batched_windows_per_sec", "speedup_vs_scalar",
            "score_check", "max_score_ulp_vs_scalar",
            "speedup", "bit_identical"):
    assert key in report, f"missing report.{key}"
for arm in ("legacy", "planned", "batched"):
    for key in ("secs", "windows_per_sec"):
        assert key in report[arm], f"missing report.{arm}.{key}"
    assert report[arm]["secs"] > 0.0, f"{arm} measured no time"
    assert report[arm]["windows_per_sec"] > 0.0, f"{arm} scored no windows"

backend = report["kernel_backend"]
if mode == "scalar":
    assert backend == "scalar", \
        f"HOTSPOT_SIMD=scalar was ignored: backend {backend}"
if backend == "scalar":
    # Scalar kernels are the oracle: all three arms must agree bit for
    # bit (the bench aborts before writing the report if they diverge).
    assert report["score_check"] == "bit-identical", \
        f"scalar run lost its bit-identity pin: {report['score_check']}"
    assert report["bit_identical"] is True, \
        "batched/planned logits diverged from the legacy scoring loop"
    assert report["max_score_ulp_vs_scalar"] == 0, \
        f"scalar run nonzero ULP: {report['max_score_ulp_vs_scalar']}"
else:
    # SIMD lanes reassociate the k-reduction: scores may leave bit
    # equality but must stay inside the repo's ULP envelope, and the
    # per-window and batched SIMD paths must still agree exactly
    # (the bench asserts that before writing).
    assert report["score_check"] == "ulp-bounded", \
        f"SIMD run reported score_check {report['score_check']}"
    assert report["max_score_ulp_vs_scalar"] <= 64, \
        (f"SIMD scores drifted {report['max_score_ulp_vs_scalar']} ULP "
         "from the scalar oracle (envelope: 64)")
    assert report["speedup_vs_scalar"] > 0.0, \
        "SIMD run measured no scalar reference throughput"

assert report["planned"]["allocs_per_window"] == 0.0, \
    ("planned path allocated in steady state: "
     f"{report['planned']['allocs_per_window']} allocs/window")
assert report["batched"]["allocs_per_block"] == 0.0, \
    ("batched path allocated in steady state: "
     f"{report['batched']['allocs_per_block']} allocs/block")
# Batching must amortise GEMM invocations: one call per layer per block
# instead of one per layer per window.
assert report["batched"]["block"] >= 1, "batched arm ran without a block"
assert 0.0 < report["batched"]["gemm_calls_per_window"] \
        < report["planned"]["gemm_calls_per_window"], \
    (f"batched GEMM calls/window {report['batched']['gemm_calls_per_window']} "
     f"not below planned {report['planned']['gemm_calls_per_window']}")
# The legacy loop allocates every window; if it stops doing so the
# baseline arm is no longer measuring what it claims to.
assert report["legacy"]["allocs_per_window"] > 0.0, \
    "legacy arm reported zero allocations - baseline reconstruction broken"

print(f"engine OK [{backend}]: {report['windows']} windows, "
      f"speedup {report['speedup']:.2f}x planned / "
      f"{report['batched']['speedup_vs_legacy']:.2f}x batched (block "
      f"{report['batched']['block']}), "
      f"{report['speedup_vs_scalar']:.2f}x vs scalar "
      f"(max {report['max_score_ulp_vs_scalar']} ULP), "
      f"score check: {report['score_check']}")
EOF
}

echo "running the engine bench with SIMD force-disabled (scalar oracle)..."
HOTSPOT_SIMD=scalar cargo run --release -p hotspot-bench --bin engine -- \
  --windows 96 --reps 3 --out "$work/scalar" >/dev/null
test -s "$work/scalar/BENCH_engine.json" \
  || { echo "scalar bench wrote no BENCH_engine.json" >&2; exit 1; }
echo "validating the scalar report (three-way bit-identity)..."
validate_report "$work/scalar/BENCH_engine.json" scalar

echo "running the engine bench on the detected backend..."
cargo run --release -p hotspot-bench --bin engine -- \
  --windows 96 --reps 3 >/dev/null
test -s results/BENCH_engine.json \
  || { echo "bench wrote no BENCH_engine.json" >&2; exit 1; }
echo "validating BENCH_engine.json (bounded-ULP pin)..."
validate_report results/BENCH_engine.json auto

echo "checking threaded-scan determinism (1 vs 2 threads)..."
BIN=${BIN:-target/release/hotspot}
if [ ! -x "$BIN" ]; then
  echo "building $BIN..."
  cargo build --release -p hotspot-cli
fi
"$BIN" gen --dir "$work" --suite iccad --scale 0.001
"$BIN" train --clips "$work/train.clips" --labels "$work/train.labels" \
       --k 4 --steps 80 --rounds 1 --batch 8 --seed 11 --model "$work/m.hsnn"
"$BIN" genlayout --out "$work/chip.clips" --tiles 3 --seed 7
"$BIN" scan --layout "$work/chip.clips" --model "$work/m.hsnn" \
       --stride 600 --threads 1 --report "$work/scan_t1.json"
"$BIN" scan --layout "$work/chip.clips" --model "$work/m.hsnn" \
       --stride 600 --threads 2 --report "$work/scan_t2.json"
python3 - "$work/scan_t1.json" "$work/scan_t2.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    serial = json.load(f)
with open(sys.argv[2]) as f:
    tiled = json.load(f)

assert serial["execution"]["threads"] == 1, \
    f"--threads 1 resolved to {serial['execution']['threads']}"
assert tiled["execution"]["threads"] == 2, \
    f"--threads 2 resolved to {tiled['execution']['threads']}"
for key in ("windows", "regions", "cache", "positives"):
    assert serial[key] == tiled[key], \
        f"threaded scan diverged from serial on report.{key}"
print(f"threaded scan OK: {len(serial['windows'])} windows identical "
      f"across 1 and 2 threads "
      f"({serial['positives']} flagged, {len(serial['regions'])} regions)")
EOF

echo "engine smoke passed."
