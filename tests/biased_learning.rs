//! Integration test of the paper's central claim (Theorem 1 direction):
//! biased fine-tuning raises hotspot recall, and for matched accuracy it
//! costs no more false alarms than shifting the decision boundary.

use hotspot_core::mgd::{self, MgdConfig};
use hotspot_core::model::CnnConfig;
use hotspot_core::shift;
use hotspot_core::FeaturePipeline;
use hotspot_datagen::suite::SuiteSpec;
use hotspot_datagen::PatternKind;
use hotspot_litho::{LithoConfig, LithoSimulator};
use hotspot_nn::Tensor;

struct Setup {
    train_x: Vec<Tensor>,
    train_y: Vec<bool>,
    test_x: Vec<Tensor>,
    test_y: Vec<bool>,
    cnn: CnnConfig,
    mgd: MgdConfig,
}

fn setup() -> Setup {
    let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
    let data = SuiteSpec {
        name: "bias".into(),
        train_hs: 45,
        train_nhs: 45,
        test_hs: 25,
        test_nhs: 25,
        mix: vec![
            (PatternKind::LineArray, 1.0),
            (PatternKind::LineTips, 1.0),
            (PatternKind::TipToTip, 0.5),
        ],
        seed: 4242,
        version: hotspot_datagen::suite::SUITE_VERSION,
        corner_grid: None,
        augment: None,
    }
    .build(&sim);
    let pipeline = FeaturePipeline::new(10, 12, 8).unwrap();
    let (train_x, train_y) = pipeline.extract_dataset(&data.train).unwrap();
    let (test_x, test_y) = pipeline.extract_dataset(&data.test).unwrap();
    Setup {
        train_x,
        train_y,
        test_x,
        test_y,
        cnn: CnnConfig {
            input_grid: 12,
            input_channels: 8,
            ..CnnConfig::default()
        },
        mgd: MgdConfig {
            lr: 2e-3,
            alpha: 0.7,
            decay_step: 200,
            batch_size: 16,
            max_steps: 500,
            val_interval: 100,
            patience: 4,
            val_fraction: 0.25,
            seed: 8,
            balanced_sampling: true,
            threads: 1,
        },
    }
}

fn recall_and_fa(net: &hotspot_nn::Network, xs: &[Tensor], ys: &[bool]) -> (f64, usize) {
    let preds = mgd::predict_all(net, xs);
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut fas = 0usize;
    for (&p, &l) in preds.iter().zip(ys.iter()) {
        if l {
            total += 1;
            if p {
                hits += 1;
            }
        } else if p {
            fas += 1;
        }
    }
    (hits as f64 / total.max(1) as f64, fas)
}

#[test]
fn biased_fine_tuning_does_not_reduce_recall() {
    let s = setup();
    let mut net = s.cnn.build();
    mgd::train(&mut net, &s.train_x, &s.train_y, 0.0, &s.mgd).unwrap();
    let (recall0, _) = recall_and_fa(&net, &s.test_x, &s.test_y);

    // Fine-tune with increasing bias (Algorithm 2) and track recall.
    let fine = MgdConfig {
        max_steps: 150,
        lr: 1e-3,
        ..s.mgd.clone()
    };
    let mut last = recall0;
    for eps in [0.1f32, 0.2, 0.3] {
        mgd::train(&mut net, &s.train_x, &s.train_y, eps, &fine).unwrap();
        let (recall, _) = recall_and_fa(&net, &s.test_x, &s.test_y);
        // Theorem 1 is an expectation statement; allow small sampling
        // noise per round but require no catastrophic regression.
        assert!(
            recall >= last - 0.08,
            "recall dropped sharply at ε = {eps}: {last} -> {recall}"
        );
        last = recall;
    }
    assert!(
        last >= recall0 - 0.04,
        "final biased recall {last} fell below unbiased {recall0}"
    );
}

#[test]
fn bias_beats_boundary_shift_on_false_alarms() {
    let s = setup();
    // Unbiased reference model.
    let mut base = s.cnn.build();
    mgd::train(&mut base, &s.train_x, &s.train_y, 0.0, &s.mgd).unwrap();

    // Biased model (fresh copy of the reference, fine-tuned).
    let mut biased = s.cnn.build();
    let snapshot = hotspot_nn::serialize::ParameterBlob::from_network(&mut base);
    snapshot.load_into(&mut biased).unwrap();
    let fine = MgdConfig {
        max_steps: 150,
        lr: 1e-3,
        ..s.mgd.clone()
    };
    for eps in [0.1f32, 0.2] {
        mgd::train(&mut biased, &s.train_x, &s.train_y, eps, &fine).unwrap();
    }
    let (bias_recall, bias_fa) = recall_and_fa(&biased, &s.test_x, &s.test_y);

    // Boundary-shift the reference model to the same recall.
    let (_, shift_recall, shift_fa) =
        shift::shift_for_accuracy(&base, &s.test_x, &s.test_y, bias_recall, 500);
    assert!(shift_recall >= bias_recall - 1e-9);
    // The paper's Figure-4 claim, with slack for the small test set:
    // biased learning should not need *more* false alarms than shifting.
    assert!(
        bias_fa <= shift_fa + 2,
        "bias FA {bias_fa} much worse than shift FA {shift_fa} at recall {bias_recall}"
    );
}
