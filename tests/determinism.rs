//! Reproducibility guarantees: everything in the suite is a pure function
//! of its seeds, so every table and figure regenerates identically.

use hotspot_core::detector::{DetectorConfig, HotspotDetector};
use hotspot_core::mgd::MgdConfig;
use hotspot_core::FeaturePipeline;
use hotspot_datagen::suite::SuiteSpec;
use hotspot_datagen::{patterns, PatternKind};
use hotspot_litho::{LithoConfig, LithoSimulator};
use rand::SeedableRng;

#[test]
fn benchmarks_regenerate_identically() {
    let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
    let a = SuiteSpec::iccad(0.001).build(&sim);
    let b = SuiteSpec::iccad(0.001).build(&sim);
    assert_eq!(a.train, b.train);
    assert_eq!(a.test, b.test);
}

#[test]
fn patterns_depend_only_on_seed_and_kind() {
    for kind in PatternKind::ALL {
        let a = patterns::sample_pattern(kind, &mut rand::rngs::StdRng::seed_from_u64(555));
        let b = patterns::sample_pattern(kind, &mut rand::rngs::StdRng::seed_from_u64(555));
        assert_eq!(a, b);
    }
}

#[test]
fn litho_labels_are_pure() {
    let sim1 = LithoSimulator::new(LithoConfig::default()).unwrap();
    let sim2 = LithoSimulator::new(LithoConfig::default()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    for _ in 0..10 {
        let clip = patterns::sample_pattern(PatternKind::RandomRouting, &mut rng);
        assert_eq!(sim1.analyze_clip(&clip), sim2.analyze_clip(&clip));
    }
}

#[test]
fn trained_detectors_are_reproducible() {
    let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
    let spec = SuiteSpec {
        name: "det".into(),
        train_hs: 20,
        train_nhs: 20,
        test_hs: 10,
        test_nhs: 10,
        mix: vec![(PatternKind::LineArray, 1.0)],
        seed: 77,
        version: hotspot_datagen::suite::SUITE_VERSION,
        corner_grid: None,
        augment: None,
    };
    let data = spec.build(&sim);
    let config = {
        let mgd = MgdConfig {
            lr: 2e-3,
            alpha: 0.7,
            decay_step: 100,
            batch_size: 8,
            max_steps: 150,
            val_interval: 50,
            patience: 3,
            val_fraction: 0.25,
            seed: 21,
            balanced_sampling: true,
            threads: 1,
        };
        let mut cfg = DetectorConfig::default();
        cfg.pipeline = FeaturePipeline::new(10, 12, 4).unwrap();
        cfg.biased.rounds = 1;
        cfg.mgd = mgd;
        cfg
    };
    let d1 = HotspotDetector::fit(&data.train, &config).unwrap();
    let d2 = HotspotDetector::fit(&data.train, &config).unwrap();
    for sample in data.test.iter() {
        assert_eq!(
            d1.predict_proba(&sample.clip).unwrap(),
            d2.predict_proba(&sample.clip).unwrap()
        );
    }
}
