//! Cross-crate integration: the full clip → label → feature → train →
//! evaluate pipeline, exercised end to end.

use hotspot_core::detector::{DetectorConfig, HotspotDetector};
use hotspot_core::mgd::MgdConfig;
use hotspot_core::FeaturePipeline;
use hotspot_datagen::suite::SuiteSpec;
use hotspot_datagen::PatternKind;
use hotspot_litho::{LithoConfig, LithoSimulator};

fn oracle() -> LithoSimulator {
    LithoSimulator::new(LithoConfig::default()).expect("default litho config")
}

fn quick_config() -> DetectorConfig {
    let mgd = MgdConfig {
        lr: 2e-3,
        alpha: 0.7,
        decay_step: 200,
        batch_size: 16,
        max_steps: 350,
        val_interval: 70,
        patience: 3,
        val_fraction: 0.25,
        seed: 3,
        balanced_sampling: true,
        threads: 1,
    };
    let mut cfg = DetectorConfig::default();
    cfg.pipeline = FeaturePipeline::new(10, 12, 8).expect("valid pipeline");
    cfg.biased.rounds = 2;
    cfg.biased.fine_tune = MgdConfig {
        max_steps: 80,
        ..mgd.clone()
    };
    cfg.mgd = mgd;
    cfg
}

fn tiny_spec() -> SuiteSpec {
    SuiteSpec {
        name: "e2e".into(),
        train_hs: 30,
        train_nhs: 30,
        test_hs: 15,
        test_nhs: 15,
        mix: vec![(PatternKind::LineArray, 1.0), (PatternKind::LineTips, 1.0)],
        seed: 1234,
        version: hotspot_datagen::suite::SUITE_VERSION,
        corner_grid: None,
        augment: None,
    }
}

#[test]
fn full_pipeline_trains_and_scores() {
    let sim = oracle();
    let data = tiny_spec().build(&sim);

    // Quotas met exactly and labels agree with the oracle.
    assert_eq!(data.train.hotspot_count(), 30);
    assert_eq!(data.test.non_hotspot_count(), 15);
    for sample in data.train.iter().take(5) {
        assert_eq!(sim.label_clip(&sample.clip), sample.hotspot);
    }

    let detector = HotspotDetector::fit(&data.train, &quick_config()).expect("training runs");
    let result = detector.evaluate(&data.test).expect("evaluation runs");

    // Structural invariants of the evaluation.
    assert_eq!(result.hotspot_total, 15);
    assert_eq!(result.non_hotspot_total, 15);
    assert!(result.true_detections <= result.hotspot_total);
    assert!(result.false_alarms <= result.non_hotspot_total);
    assert!(result.accuracy >= 0.0 && result.accuracy <= 1.0);
    // ODST = 10 s per flagged clip + eval time, exactly.
    let flagged = result.true_detections + result.false_alarms;
    assert!((result.odst_s - (flagged as f64 * 10.0 + result.eval_time_s)).abs() < 1e-9);
}

#[test]
fn per_clip_predictions_match_batch_evaluation() {
    let sim = oracle();
    let data = tiny_spec().build(&sim);
    let detector = HotspotDetector::fit(&data.train, &quick_config()).expect("training runs");
    let result = detector.evaluate(&data.test).expect("evaluation runs");
    let mut hits = 0usize;
    let mut fas = 0usize;
    for sample in data.test.iter() {
        let p = detector.predict(&sample.clip).expect("prediction runs");
        if p && sample.hotspot {
            hits += 1;
        }
        if p && !sample.hotspot {
            fas += 1;
        }
    }
    assert_eq!(hits, result.true_detections);
    assert_eq!(fas, result.false_alarms);
}

#[test]
fn training_report_records_bias_schedule() {
    let sim = oracle();
    let data = tiny_spec().build(&sim);
    let detector = HotspotDetector::fit(&data.train, &quick_config()).expect("training runs");
    let report = detector.training_report();
    assert_eq!(report.rounds.len(), 2);
    assert_eq!(report.rounds[0].epsilon, 0.0);
    assert!((report.rounds[1].epsilon - 0.1).abs() < 1e-6);
    assert!(report.total_train_time_s() > 0.0);
    // Every round's history is non-empty and time-ordered.
    for round in &report.rounds {
        assert!(!round.report.history.is_empty());
        for w in round.report.history.windows(2) {
            assert!(w[1].elapsed_s >= w[0].elapsed_s);
        }
    }
}
