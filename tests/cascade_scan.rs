//! Property tests for the two-stage cascade scan (AdaBoost-on-density
//! prefilter in front of the CNN):
//!
//! - Every window the prefilter forwards to the CNN scores **bit-identical**
//!   to the same window in a non-cascade scan; cleared windows carry score
//!   0 and are never flagged.
//! - A prefilter forced to pass everything (margin threshold `-∞`)
//!   reproduces the non-cascade scan exactly — scores, flags, regions, and
//!   block-DCT cache accounting.
//! - Cascade decisions and scores are thread-count invariant.
//! - A prefilter trained with `CascadePrefilter::train` meets its target
//!   false-negative rate on the held-out calibration split.

use hotspot_baselines::{AdaBoost, CalibratedAdaBoost, DecisionStump};
use hotspot_core::cascade::{holdout_mask, prefilter_features};
use hotspot_core::model::CnnConfig;
use hotspot_core::{
    CascadeConfig, CascadePrefilter, FeaturePipeline, HotspotDetector, Parallelism, ScanConfig,
    ScanStage,
};
use hotspot_datagen::suite::SuiteSpec;
use hotspot_features::density_feature;
use hotspot_geometry::{raster, Clip, Point, Rect};
use hotspot_litho::{LithoConfig, LithoSimulator};
use proptest::prelude::*;

const WINDOW_NM: i64 = 400; // 40×40 px at 10 nm/px

fn tiny_detector() -> HotspotDetector {
    let pipeline = FeaturePipeline::new(10, 4, 4).expect("valid pipeline");
    let net = CnnConfig {
        input_grid: 4,
        input_channels: 4,
        stage1_maps: 4,
        stage2_maps: 4,
        fc_width: 8,
        dropout_pct: 50,
        seed: 2017,
    }
    .build();
    HotspotDetector::from_network(pipeline, net)
}

/// A single-stump prefilter on the window's top-left density block: the
/// margin is ±1 around `stump_threshold`, decided at `margin_threshold`.
/// Grid 4 divides the 40 px scan window.
fn stump_prefilter(margin_threshold: f32, stump_threshold: f32) -> CascadePrefilter {
    let stump = DecisionStump {
        feature: 0,
        threshold: stump_threshold,
        polarity: 1.0,
    };
    let model = AdaBoost::from_parts(vec![(1.0, stump)], 17).expect("valid stump");
    CascadePrefilter::new(
        CalibratedAdaBoost::new(model, margin_threshold, 0.0, 0.0),
        4,
    )
    .expect("grid matches feature length")
}

fn arb_layout() -> impl Strategy<Value = Clip> {
    (50i64..=120, 50i64..=120)
        .prop_flat_map(|(wt, ht)| {
            let w = wt * 10;
            let h = ht * 10;
            let rects = proptest::collection::vec(
                (0i64..w - 30, 0i64..h - 30, 15i64..300, 15i64..300),
                1..24,
            );
            (Just(w), Just(h), rects)
        })
        .prop_map(|(w, h, rects)| {
            let extent = Rect::new(0, 0, w, h).expect("positive extent");
            let shapes = rects.into_iter().map(|(x, y, rw, rh)| {
                Rect::from_size(Point::new(x, y), rw.min(w - x), rh.min(h - y))
                    .expect("clamped rect is positive")
            });
            Clip::with_shapes(extent, shapes)
        })
}

fn scan_config(stride_nm: i64) -> ScanConfig {
    ScanConfig::new(stride_nm)
        .expect("positive stride")
        .with_window_nm(WINDOW_NM)
        .expect("positive window")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The cascade pin: CNN-scored windows are bit-identical to the full
    /// scan, cleared windows score 0 and never flag, and the cascade never
    /// flags a window the full scan would not.
    #[test]
    fn cnn_scored_windows_match_the_full_scan_bit_for_bit(
        layout in arb_layout(),
        stump_threshold in 0.05f32..0.95,
    ) {
        let detector = tiny_detector();
        for stride in [200i64, 150] {
            let plain = detector.scan(&layout, &scan_config(stride)).expect("scan runs");
            let config = scan_config(stride)
                .with_cascade(stump_prefilter(0.0, stump_threshold));
            let cascaded = detector.scan(&layout, &config).expect("cascade scan runs");
            prop_assert_eq!(cascaded.windows.len(), plain.windows.len());
            let stats = cascaded.cascade.as_ref().expect("cascade stats");
            prop_assert_eq!(stats.cleared + stats.forwarded, cascaded.windows.len());
            prop_assert_eq!(cascaded.cnn_evals, stats.forwarded);
            for (c, p) in cascaded.windows.iter().zip(plain.windows.iter()) {
                prop_assert_eq!((c.x_nm, c.y_nm), (p.x_nm, p.y_nm));
                match c.stage {
                    ScanStage::Cnn => {
                        prop_assert_eq!(
                            c.score.to_bits(), p.score.to_bits(),
                            "stride {}, window at ({}, {})", stride, c.x_nm, c.y_nm
                        );
                        prop_assert_eq!(c.hotspot, p.hotspot);
                    }
                    ScanStage::Prefilter => {
                        prop_assert_eq!(c.score, 0.0);
                        prop_assert!(!c.hotspot);
                    }
                }
                prop_assert!(c.margin.is_some());
            }
        }
    }

    /// Forcing the prefilter to pass every window (threshold `-∞`) makes
    /// the cascade scan indistinguishable from the plain scan.
    #[test]
    fn all_pass_prefilter_reproduces_the_full_scan(layout in arb_layout()) {
        let detector = tiny_detector();
        for stride in [200i64, 150] {
            let plain = detector.scan(&layout, &scan_config(stride)).expect("scan runs");
            let config = scan_config(stride)
                .with_cascade(stump_prefilter(f32::NEG_INFINITY, 0.5));
            let cascaded = detector.scan(&layout, &config).expect("cascade scan runs");
            prop_assert_eq!(&cascaded.cache, &plain.cache);
            prop_assert_eq!(&cascaded.regions, &plain.regions);
            prop_assert_eq!(cascaded.cnn_evals, plain.windows.len());
            for (c, p) in cascaded.windows.iter().zip(plain.windows.iter()) {
                prop_assert_eq!(c.score.to_bits(), p.score.to_bits());
                prop_assert_eq!(c.hotspot, p.hotspot);
                prop_assert_eq!(c.stage, ScanStage::Cnn);
            }
        }
    }

    /// Sharding the cascade scan across worker bands is invisible: thread
    /// counts 1, 2, and 4 produce identical reports — prefilter margins,
    /// stage decisions, CNN scores, regions, and cache totals.
    #[test]
    fn cascade_scan_is_thread_count_invariant(
        layout in arb_layout(),
        stump_threshold in 0.05f32..0.95,
    ) {
        let mut detector = tiny_detector();
        for stride in [200i64, 150] {
            let config = scan_config(stride)
                .with_threshold(0.0).expect("threshold in range")
                .with_cascade(stump_prefilter(0.0, stump_threshold));
            detector.set_parallelism(Parallelism::serial());
            let serial = detector.scan(&layout, &config).expect("serial scan runs");
            for workers in [2usize, 4] {
                detector.set_parallelism(Parallelism::fixed(workers).expect("nonzero"));
                let tiled = detector.scan(&layout, &config).expect("tiled scan runs");
                prop_assert_eq!(&tiled.cascade, &serial.cascade, "workers {}", workers);
                prop_assert_eq!(&tiled.cache, &serial.cache, "workers {}", workers);
                prop_assert_eq!(&tiled.regions, &serial.regions, "workers {}", workers);
                prop_assert_eq!(tiled.cnn_evals, serial.cnn_evals);
                for (a, b) in tiled.windows.iter().zip(serial.windows.iter()) {
                    prop_assert_eq!(a.stage, b.stage);
                    prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
                    prop_assert_eq!(
                        a.margin.expect("cascade margin").to_bits(),
                        b.margin.expect("cascade margin").to_bits()
                    );
                }
            }
        }
    }
}

/// Calibration pin: training at target FNR 0 yields a threshold that
/// forwards **every** held-out hotspot, and the recorded achieved FNR is
/// exactly what re-scoring the holdout reproduces.
#[test]
fn trained_prefilter_meets_its_target_fnr_on_the_holdout() {
    let sim = LithoSimulator::new(LithoConfig::default()).expect("litho config");
    let data = SuiteSpec {
        name: "cascade-calibration".into(),
        train_hs: 30,
        train_nhs: 50,
        test_hs: 0,
        test_nhs: 0,
        mix: vec![
            (hotspot_datagen::PatternKind::LineArray, 1.0),
            (hotspot_datagen::PatternKind::LineTips, 1.0),
        ],
        seed: 97,
        version: hotspot_datagen::suite::SUITE_VERSION,
        corner_grid: None,
        augment: None,
    }
    .build(&sim)
    .train;

    let config = CascadeConfig {
        grid_dim: 4,
        rounds: 16,
        target_fnr: 0.0,
        holdout_fraction: 0.25,
    };
    let resolution_nm = 10;
    let prefilter =
        CascadePrefilter::train(&data, resolution_nm, &config).expect("prefilter trains");
    assert_eq!(prefilter.calibrated().target_fnr(), 0.0);
    assert_eq!(prefilter.calibrated().achieved_fnr(), 0.0);

    // Recompute the deterministic split and check the operating point on
    // the same held-out samples the calibration saw.
    let labels: Vec<bool> = data.iter().map(|s| s.hotspot).collect();
    let mask = holdout_mask(&labels, config.holdout_fraction);
    let mut held_hotspots = 0usize;
    for (sample, &held) in data.iter().zip(mask.iter()) {
        if !held || !sample.hotspot {
            continue;
        }
        held_hotspots += 1;
        let image = raster::rasterize_clip(&sample.clip.normalized(), resolution_nm);
        let features = prefilter_features(
            density_feature(&image, config.grid_dim).expect("density grid fits"),
        );
        let margin = prefilter
            .try_margin(&features)
            .expect("feature length matches");
        assert!(
            prefilter.passes(margin),
            "held-out hotspot cleared by a prefilter calibrated to FNR 0"
        );
    }
    assert!(held_hotspots > 0, "holdout split produced no hotspots");
}
