//! Cross-crate consistency of the feature representations: the geometry
//! raster, the DCT tensor, and the classical baseline features must agree
//! on what they see.

use hotspot_core::FeaturePipeline;
use hotspot_datagen::{patterns, PatternKind};
use hotspot_dct::{extract_feature_tensor, reconstruct_image, FeatureTensorSpec};
use hotspot_features::{ccs_feature, density_feature, CcsSpec};
use hotspot_geometry::raster;
use rand::SeedableRng;

fn sample_clip(seed: u64, kind: PatternKind) -> hotspot_geometry::Clip {
    patterns::sample_pattern(kind, &mut rand::rngs::StdRng::seed_from_u64(seed))
}

#[test]
fn dc_channel_equals_scaled_density_feature() {
    // The feature tensor's DC channel and the density baseline feature are
    // the same measurement up to the orthonormal-DCT scale factor B.
    let clip = sample_clip(11, PatternKind::RandomRouting);
    let image = raster::rasterize_clip(&clip.normalized(), 10);
    let spec = FeatureTensorSpec::new(12, 4).unwrap();
    let tensor = extract_feature_tensor(&image, &spec).unwrap();
    let density = density_feature(&image, 12).unwrap();
    let b = tensor.block_size() as f32;
    for j in 0..12 {
        for i in 0..12 {
            let dc = tensor.coefficient(i, j, 0);
            let d = density[j * 12 + i];
            assert!(
                (dc - d * b).abs() < 1e-3,
                "block ({i},{j}): DC {dc} vs density*B {}",
                d * b
            );
        }
    }
}

#[test]
fn pipeline_tensor_matches_manual_extraction() {
    let clip = sample_clip(12, PatternKind::ContactArray);
    let pipeline = FeaturePipeline::new(10, 12, 16).unwrap();
    let from_pipeline = pipeline.extract(&clip).unwrap();
    // Manual: raster -> tensor -> scale by 1/B.
    let image = raster::rasterize_clip(&clip.normalized(), 10);
    let spec = FeatureTensorSpec::new(12, 16).unwrap();
    let tensor = extract_feature_tensor(&image, &spec).unwrap();
    let scale = 1.0 / tensor.block_size() as f32;
    for (a, &b) in from_pipeline
        .as_slice()
        .iter()
        .zip(tensor.as_slice().iter())
    {
        assert!((a - b * scale).abs() < 1e-6);
    }
}

#[test]
fn reconstruction_preserves_total_mass_at_high_k() {
    // With most coefficients kept, the reconstructed image's covered area
    // matches the raster's (the DCT is an isometry and truncation drops
    // only high-frequency detail, which integrates to zero).
    let clip = sample_clip(13, PatternKind::LineArray);
    let image = raster::rasterize_clip(&clip.normalized(), 10);
    let spec = FeatureTensorSpec::new(12, 60).unwrap();
    let tensor = extract_feature_tensor(&image, &spec).unwrap();
    let back = reconstruct_image(&tensor, tensor.block_size()).unwrap();
    let rel = (image.sum() - back.sum()).abs() / image.sum().max(1.0);
    assert!(rel < 1e-3, "relative mass error {rel}");
}

#[test]
fn dc_truncation_is_exact_for_k1() {
    // k = 1 keeps only DC: reconstruction is each block's mean.
    let clip = sample_clip(14, PatternKind::Isolated);
    let image = raster::rasterize_clip(&clip.normalized(), 10);
    let spec = FeatureTensorSpec::new(12, 1).unwrap();
    let tensor = extract_feature_tensor(&image, &spec).unwrap();
    let back = reconstruct_image(&tensor, tensor.block_size()).unwrap();
    let b = tensor.block_size();
    for j in 0..12 {
        for i in 0..12 {
            let blk = image.window(i * b, j * b, b, b);
            let mean = blk.mean() as f32;
            // Every reconstructed pixel in the block equals the block mean.
            assert!((back[(i * b, j * b)] - mean).abs() < 1e-3);
            assert!((back[(i * b + b - 1, j * b + b - 1)] - mean).abs() < 1e-3);
        }
    }
}

#[test]
fn ccs_centre_sample_matches_raster_centre() {
    let clip = sample_clip(15, PatternKind::Jogs);
    let image = raster::rasterize_clip(&clip.normalized(), 10);
    let spec = CcsSpec {
        circles: 4,
        samples_per_circle: 8,
        max_radius_frac: 0.9,
    };
    let f = ccs_feature(&image, &spec).unwrap();
    // Feature 0 is the bilinear sample at the exact centre.
    let cx = (image.width() - 1) / 2;
    let cy = (image.height() - 1) / 2;
    // 119/2 = 59.5 -> average of the four centre pixels (120 px wide).
    let expect =
        (image[(cx, cy)] + image[(cx + 1, cy)] + image[(cx, cy + 1)] + image[(cx + 1, cy + 1)])
            / 4.0;
    assert!((f[0] - expect).abs() < 1e-5);
}

#[test]
fn all_archetypes_survive_every_extractor() {
    // No archetype/extractor combination may panic or produce NaN.
    let ccs_spec = CcsSpec::default();
    let pipeline = FeaturePipeline::new(10, 12, 32).unwrap();
    for (i, kind) in PatternKind::ALL.into_iter().enumerate() {
        let clip = sample_clip(100 + i as u64, kind);
        let image = raster::rasterize_clip(&clip.normalized(), 10);
        let d = density_feature(&image, 12).unwrap();
        let c = ccs_feature(&image, &ccs_spec).unwrap();
        let t = pipeline.extract(&clip).unwrap();
        assert!(d.iter().all(|v| v.is_finite()));
        assert!(c.iter().all(|v| v.is_finite()));
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
    }
}
