//! Integration: ROC sweeps and calibration analysis over a trained
//! detector behave coherently with the hard-threshold metrics.

use hotspot_core::calibration::{expected_calibration_error, reliability_diagram};
use hotspot_core::detector::{DetectorConfig, HotspotDetector};
use hotspot_core::mgd::MgdConfig;
use hotspot_core::{roc, FeaturePipeline};
use hotspot_datagen::suite::SuiteSpec;
use hotspot_datagen::PatternKind;
use hotspot_litho::{LithoConfig, LithoSimulator};

fn trained_setup() -> (HotspotDetector, Vec<hotspot_nn::Tensor>, Vec<bool>) {
    let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
    let data = SuiteSpec {
        name: "metrics".into(),
        train_hs: 40,
        train_nhs: 40,
        test_hs: 25,
        test_nhs: 25,
        mix: vec![(PatternKind::LineArray, 1.0), (PatternKind::LineTips, 1.0)],
        seed: 321,
        version: hotspot_datagen::suite::SUITE_VERSION,
        corner_grid: None,
        augment: None,
    }
    .build(&sim);
    let mut cfg = DetectorConfig::default();
    cfg.pipeline = FeaturePipeline::new(10, 12, 8).unwrap();
    cfg.mgd = MgdConfig {
        lr: 2e-3,
        alpha: 0.7,
        decay_step: 200,
        batch_size: 16,
        max_steps: 400,
        val_interval: 100,
        patience: 4,
        val_fraction: 0.25,
        seed: 12,
        balanced_sampling: true,
        threads: 1,
    };
    cfg.biased.rounds = 2;
    cfg.biased.fine_tune = MgdConfig {
        max_steps: 100,
        ..cfg.mgd.clone()
    };
    let detector = HotspotDetector::fit(&data.train, &cfg).unwrap();
    let (test_x, test_y) = cfg.pipeline.extract_dataset(&data.test).unwrap();
    (detector, test_x, test_y)
}

#[test]
fn roc_curve_brackets_the_default_operating_point() {
    let (detector, test_x, test_y) = trained_setup();
    // Default operating point from hard predictions.
    let preds: Vec<bool> = test_x
        .iter()
        .map(|f| hotspot_core::mgd::predict_hotspot_prob(detector.network(), f) > 0.5)
        .collect();
    let hits = preds
        .iter()
        .zip(test_y.iter())
        .filter(|(&p, &l)| p && l)
        .count();
    let recall = hits as f64 / test_y.iter().filter(|&&l| l).count() as f64;

    let curve = roc::sweep(detector.network(), &test_x, &test_y, 100);
    // Monotone curve containing an operating point matching threshold 0.5.
    let at_half = curve
        .iter()
        .min_by(|a, b| {
            (a.threshold - 0.5)
                .abs()
                .total_cmp(&(b.threshold - 0.5).abs())
        })
        .expect("non-empty curve");
    assert!(
        (at_half.recall - recall).abs() < 1e-9,
        "ROC at 0.5 ({}) disagrees with hard predictions ({recall})",
        at_half.recall
    );

    // AUC of a trained model must beat chance decisively on this set.
    let auc = roc::auc(detector.network(), &test_x, &test_y, 200);
    assert!(auc > 0.6, "auc {auc}");
}

#[test]
fn calibration_diagram_covers_test_set() {
    let (detector, test_x, test_y) = trained_setup();
    let diagram = reliability_diagram(detector.network(), &test_x, &test_y, 8);
    let total: usize = diagram.iter().map(|b| b.count).sum();
    assert_eq!(total, test_x.len());
    let ece = expected_calibration_error(detector.network(), &test_x, &test_y, 8);
    assert!((0.0..=1.0).contains(&ece));
}
