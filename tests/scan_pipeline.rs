//! Property test for the scan engine's central contract: sliding-window
//! scan scores are **bit-identical** to the naive pipeline that extracts
//! each window as a standalone clip and scores it through
//! `HotspotDetector::predict_batch` — for block-aligned strides (where the
//! scan reuses cached block-DCT coefficients) and unaligned strides (where
//! it falls back to direct per-window transforms) alike, and for every
//! batched scoring block size (per-window, whole-scan, and ragged-tail
//! blocks). On aligned strides the cache must actually fire.

use hotspot_core::model::CnnConfig;
use hotspot_core::{FeaturePipeline, HotspotDetector, Parallelism, ScanConfig};
use hotspot_geometry::{Clip, Point, Rect};
use proptest::prelude::*;

const WINDOW_NM: i64 = 400; // 4×4 grid of 100 nm DCT blocks at 10 nm/px

fn tiny_detector() -> HotspotDetector {
    let pipeline = FeaturePipeline::new(10, 4, 4).expect("valid pipeline");
    let net = CnnConfig {
        input_grid: 4,
        input_channels: 4,
        stage1_maps: 4,
        stage2_maps: 4,
        fc_width: 8,
        dropout_pct: 50,
        seed: 2017,
    }
    .build();
    HotspotDetector::from_network(pipeline, net)
}

/// A random layout: an extent that is a multiple of the raster resolution,
/// filled with random rectangles (coordinates are *not* snapped — partial
/// pixel coverage must round-trip bit-exactly too).
fn arb_layout() -> impl Strategy<Value = Clip> {
    (50i64..=120, 50i64..=120)
        .prop_flat_map(|(wt, ht)| {
            let w = wt * 10; // 500..=1200 nm, always >= the 400 nm window
            let h = ht * 10;
            let rects = proptest::collection::vec(
                (0i64..w - 30, 0i64..h - 30, 15i64..300, 15i64..300),
                1..24,
            );
            (Just(w), Just(h), rects)
        })
        .prop_map(|(w, h, rects)| {
            let extent = Rect::new(0, 0, w, h).expect("positive extent");
            let shapes = rects.into_iter().map(|(x, y, rw, rh)| {
                Rect::from_size(Point::new(x, y), rw.min(w - x), rh.min(h - y))
                    .expect("clamped rect is positive")
            });
            Clip::with_shapes(extent, shapes)
        })
}

fn assert_scan_matches_naive(detector: &HotspotDetector, layout: &Clip, stride_nm: i64) {
    let config = ScanConfig::new(stride_nm)
        .expect("positive stride")
        .with_window_nm(WINDOW_NM)
        .expect("positive window");
    let report = detector.scan(layout, &config).expect("scan runs");
    assert_eq!(report.windows.len(), report.grid_cols * report.grid_rows);

    // Batched scoring is pinned across block sizes: per-window (B = 1),
    // the default plan-suggested block, one whole-scan block, and a block
    // that leaves a ragged tail must all produce bit-identical scores and
    // identical cache accounting.
    let total = report.windows.len();
    let ragged = (total / 2 + 1).max(2); // total % ragged != 0 for total > 1
    for block in [1usize, total, ragged] {
        let blocked = detector
            .scan(
                layout,
                &config
                    .clone()
                    .with_score_block(block)
                    .expect("nonzero block"),
            )
            .expect("blocked scan runs");
        assert_eq!(blocked.cache, report.cache, "block {block}");
        for (a, b) in blocked.windows.iter().zip(report.windows.iter()) {
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "stride {stride_nm}, block {block}, window at ({}, {})",
                a.x_nm,
                a.y_nm
            );
        }
    }

    let clips: Vec<Clip> = report
        .windows
        .iter()
        .map(|w| {
            layout.extract_window(
                Rect::from_size(Point::new(w.x_nm, w.y_nm), WINDOW_NM, WINDOW_NM)
                    .expect("window fits"),
            )
        })
        .collect();
    let naive = detector.predict_batch(&clips).expect("naive batch runs");
    for (w, p) in report.windows.iter().zip(naive.iter()) {
        assert_eq!(
            w.score.to_bits(),
            p.to_bits(),
            "stride {stride_nm}, window at ({}, {}): scan {} != naive {}",
            w.x_nm,
            w.y_nm,
            w.score,
            p
        );
    }

    // Block-aligned strides must reuse coefficients whenever windows
    // overlap on the block lattice (any layout wider than one window does).
    let block_nm = 100;
    let overlapping = report.grid_cols > 1 || report.grid_rows > 1;
    if stride_nm % block_nm == 0 && overlapping && stride_nm < WINDOW_NM {
        assert!(
            report.cache.hits > 0 && report.cache.hit_rate() > 0.0,
            "aligned stride {stride_nm} never hit the block cache: {:?}",
            report.cache
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn scan_is_bit_identical_to_per_window_clip_extraction(layout in arb_layout()) {
        let detector = tiny_detector();
        // 200 nm: multiple of the 100 nm block size (cached path).
        // 150 nm: misaligned every other column/row (fallback path).
        for stride in [200i64, 150] {
            assert_scan_matches_naive(&detector, &layout, stride);
        }
    }

    /// Tile-seam contract: sharding the scan across worker bands must be
    /// invisible in the output. For random layouts (including ones shorter
    /// than a single band and hotspot regions that straddle band seams) and
    /// both aligned and unaligned strides, the multithreaded scan must
    /// reproduce the serial scan exactly — window scores to the bit, the
    /// flagged set, merged region rectangles and numbering, and the
    /// block-DCT cache totals.
    #[test]
    fn tiled_scan_is_bit_identical_to_serial_across_thread_counts(layout in arb_layout()) {
        let mut detector = tiny_detector();
        for stride in [200i64, 150] {
            let config = ScanConfig::new(stride)
                .expect("positive stride")
                .with_window_nm(WINDOW_NM)
                .expect("positive window")
                // Flag everything so regions exist and must merge across
                // band seams identically at every thread count.
                .with_threshold(0.0)
                .expect("threshold in range");

            detector.set_parallelism(Parallelism::serial());
            let serial = detector.scan(&layout, &config).expect("serial scan runs");
            prop_assert_eq!(serial.threads, 1);

            for workers in [2usize, 3, 7] {
                detector.set_parallelism(Parallelism::fixed(workers).expect("nonzero"));
                let tiled = detector.scan(&layout, &config).expect("tiled scan runs");
                // Bands never outnumber window rows, so thin layouts
                // collapse to fewer threads than requested.
                prop_assert_eq!(tiled.threads, workers.min(serial.grid_rows));
                prop_assert_eq!(&tiled.cache, &serial.cache, "workers {}", workers);
                prop_assert_eq!(&tiled.regions, &serial.regions, "workers {}", workers);
                prop_assert_eq!(tiled.windows.len(), serial.windows.len());
                for (a, b) in tiled.windows.iter().zip(serial.windows.iter()) {
                    prop_assert_eq!(
                        a.score.to_bits(), b.score.to_bits(),
                        "stride {}, workers {}, window at ({}, {})",
                        stride, workers, a.x_nm, a.y_nm
                    );
                    prop_assert_eq!(a.hotspot, b.hotspot);
                }
            }
        }
    }
}
