//! Integration: the clip interchange format round-trips generated
//! benchmarks, and reloaded clips keep their lithography labels and
//! feature tensors.

use hotspot_core::FeaturePipeline;
use hotspot_datagen::{patterns, PatternKind};
use hotspot_geometry::io::{read_clips, write_clips};
use hotspot_litho::{LithoConfig, LithoSimulator};
use rand::SeedableRng;

fn generated_clips() -> Vec<hotspot_geometry::Clip> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    PatternKind::ALL
        .into_iter()
        .flat_map(|kind| {
            let mut rng2 = rand::rngs::StdRng::seed_from_u64(rng_next(&mut rng));
            (0..3)
                .map(move |_| patterns::sample_pattern(kind, &mut rng2))
                .collect::<Vec<_>>()
        })
        .collect()
}

fn rng_next(rng: &mut rand::rngs::StdRng) -> u64 {
    use rand::Rng;
    rng.gen()
}

#[test]
fn every_archetype_roundtrips_through_text_format() {
    let clips = generated_clips();
    let mut buf = Vec::new();
    write_clips(&mut buf, clips.iter()).expect("write succeeds");
    let back = read_clips(buf.as_slice()).expect("read succeeds");
    assert_eq!(back, clips);
}

#[test]
fn labels_survive_serialization() {
    let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
    let clips = generated_clips();
    let labels: Vec<bool> = clips.iter().map(|c| sim.label_clip(c)).collect();
    let mut buf = Vec::new();
    write_clips(&mut buf, clips.iter()).unwrap();
    let back = read_clips(buf.as_slice()).unwrap();
    for (clip, &expected) in back.iter().zip(labels.iter()) {
        assert_eq!(sim.label_clip(clip), expected);
    }
}

#[test]
fn feature_tensors_survive_serialization() {
    let pipeline = FeaturePipeline::new(10, 12, 8).unwrap();
    let clips = generated_clips();
    let mut buf = Vec::new();
    write_clips(&mut buf, clips.iter()).unwrap();
    let back = read_clips(buf.as_slice()).unwrap();
    for (original, reloaded) in clips.iter().zip(back.iter()) {
        assert_eq!(
            pipeline.extract(original).unwrap(),
            pipeline.extract(reloaded).unwrap()
        );
    }
}

#[test]
fn format_is_humanly_greppable() {
    let clips = generated_clips();
    let mut buf = Vec::new();
    write_clips(&mut buf, clips.iter().take(1)).unwrap();
    let text = String::from_utf8(buf).expect("text format is UTF-8");
    assert!(text.starts_with("clip 0 0 1200 1200"));
    assert!(text.trim_end().ends_with("end"));
    assert_eq!(
        text.lines().filter(|l| l.starts_with("rect")).count(),
        clips[0].shape_count()
    );
}
